#include "mr/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "mr/context.hpp"
#include "mr/fault.hpp"
#include "mr/group.hpp"
#include "mr/spill.hpp"
#include "mr/trace.hpp"

namespace pairmr::mr {

namespace {

// Backstop against a runaway fault plan (a correct plan kills any task
// only finitely often, so this is never reached in practice).
constexpr std::uint32_t kAttemptCap = 1000;

// One map task's input: a contiguous slice of a DFS file.
struct Split {
  std::shared_ptr<const DfsFile> file;
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  NodeId node = 0;      // where the task runs (data-local)
};

std::vector<Split> build_splits(SimDfs& dfs, const JobSpec& spec) {
  std::vector<Split> splits;
  for (const auto& path : spec.input_paths) {
    auto file = dfs.open(path);
    const std::size_t n = file->records.size();
    const std::uint64_t chunk =
        spec.max_records_per_split == 0 ? n : spec.max_records_per_split;
    if (n == 0) {
      // Empty files still produce one (empty) task so setup/cleanup-only
      // mappers run — mirrors Hadoop behaviour with empty splits disabled;
      // we skip them instead to keep task counts meaningful.
      continue;
    }
    for (std::size_t begin = 0; begin < n;
         begin += static_cast<std::size_t>(chunk)) {
      const std::size_t end =
          std::min(n, begin + static_cast<std::size_t>(chunk));
      splits.push_back(Split{file, begin, end, file->home});
    }
  }
  return splits;
}

// PAIRMR_TEST_MEMORY_BUDGET (a byte count) force-enables the spill path
// for jobs whose spec leaves it disabled — the CI spill suite runs the
// test battery out-of-core this way, relying on the spill path producing
// byte-identical output. Parsed once per process.
std::uint64_t test_memory_budget_bytes() {
  static const std::uint64_t bytes = [] {
    const char* env = std::getenv("PAIRMR_TEST_MEMORY_BUDGET");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }();
  return bytes;
}

// One (map task, reduce task) shuffle partition. The in-memory path
// keeps everything in `final_run` (unsorted; the reduce side sorts).
// Spill mode adds the task's DFS scratch runs, oldest first, and
// `final_run` becomes the last, sorted, in-memory run. `bytes` and
// `records` are settled once when the map task's winning attempt
// publishes, then reused for every fetch metering of the partition.
struct MapOutputPartition {
  std::vector<std::shared_ptr<const DfsFile>> runs;
  std::vector<Record> final_run;
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;

  void release() {
    runs.clear();
    runs.shrink_to_fit();
    final_run.clear();
    final_run.shrink_to_fit();
  }
};

// Run the combiner over one partition bucket, replacing its contents.
// `parent` is the spill span the combine nests under (0 when untraced).
void run_combiner(const JobSpec& spec, NodeId node, TaskIndex task,
                  Counters& counters, std::vector<Record>& bucket,
                  Tracer* tracer, SpanId parent) {
  ScopedSpan combine(
      tracer, tracer != nullptr
                  ? tracer->begin_op(parent, SpanKind::kCombine, node)
                  : 0);
  ReduceContext ctx(node, task, counters, nullptr, tracer, combine.id());
  auto combiner = spec.combiner_factory();
  combiner->setup(ctx);
  counters.add(counter::kCombineInputRecords, bucket.size());
  group_by_key(bucket, [&](const Bytes& key, const std::vector<Bytes>& vals) {
    combiner->reduce(key, vals, ctx);
  });
  combiner->cleanup(ctx);
  counters.add(counter::kCombineOutputRecords, ctx.output().size());
  if (tracer != nullptr) {
    std::uint64_t bytes = 0;
    for (const auto& rec : ctx.output()) bytes += rec.size_bytes();
    combine.set_payload(bytes, ctx.output().size());
  }
  bucket = std::move(ctx.output());
}

}  // namespace

JobResult Engine::run(const JobSpec& spec) {
  spec.validate();

  const Stopwatch timer;
  const std::uint32_t num_nodes = cluster_.num_nodes();
  // Map-only jobs use a single pass-through bucket so emission order is
  // preserved in the output.
  const std::uint32_t num_reducers =
      spec.map_only ? 1
      : spec.num_reduce_tasks == 0 ? num_nodes
                                   : spec.num_reduce_tasks;
  const HashPartitioner default_partitioner;
  const Partitioner& partitioner =
      spec.partitioner ? *spec.partitioner : default_partitioner;

  static const FaultPlan kNoFaults;
  const FaultPlan& plan = spec.fault_plan ? *spec.fault_plan : kNoFaults;

  // When no execution can ever be repeated — no fault plan (so no kills,
  // stragglers, or dropped fetches) and no user-error retries — every
  // reduce task settles on its first execution and the shuffle can *move*
  // map-output records into the reducer instead of copying them. Any
  // retry possibility forces copies, since re-execution re-fetches the
  // buckets.
  const bool movable_shuffle =
      spec.fault_plan == nullptr && spec.max_task_attempts <= 1;

  // Effective memory budget (mr/spill.hpp): the spec's, or the test
  // override when the spec leaves it disabled. Map-only jobs never spill —
  // their output contract is emission order, which a sorted run would
  // destroy.
  MemoryBudget budget = spec.memory_budget;
  if (!budget.enabled() && test_memory_budget_bytes() != 0) {
    budget.bytes = test_memory_budget_bytes();
    budget.merge_fan_in = std::max<std::uint32_t>(2, budget.merge_fan_in);
  }
  if (spec.map_only) budget = MemoryBudget{.bytes = 0};
  const bool spill_mode = budget.enabled();
  // Scratch runs live next to (not inside) the output dir, so output
  // listings stay clean. Tags below keep every task attempt's files
  // unique (the DFS is write-once).
  const std::string scratch_root = spec.output_dir + ".spill/";

  // Tracing is opt-in and nullable: every recording site below is guarded,
  // so an untraced run does no tracer work at all.
  Tracer* const tracer =
      spec.tracer != nullptr ? spec.tracer : cluster_.tracer();
  const SpanId job_span =
      tracer != nullptr ? tracer->begin_job(spec.name) : 0;

  // Node the plan loses during this job; a node that already failed in an
  // earlier job does not die twice (it is simply never scheduled).
  std::optional<NodeId> doomed;
  if (plan.failed_node()) {
    PAIRMR_REQUIRE(*plan.failed_node() < num_nodes,
                   "fault plan fails an out-of-range node");
    if (cluster_.is_alive(*plan.failed_node())) doomed = plan.failed_node();
  }

  // Nodes able to host (re)scheduled attempts for the rest of the job.
  std::vector<NodeId> usable;
  usable.reserve(num_nodes);
  for (NodeId nd = 0; nd < num_nodes; ++nd) {
    if (cluster_.is_alive(nd) && !(doomed && nd == *doomed)) {
      usable.push_back(nd);
    }
  }
  PAIRMR_REQUIRE(!usable.empty(), "fault plan leaves no usable node");

  Counters counters;
  SimDfs& dfs = cluster_.dfs();
  NetworkMeter& net = cluster_.network();

  // Scratch lifecycle: clear leftovers of any earlier run that shared the
  // output dir, and sweep our own files on every exit path (the guard
  // also fires when a failing job propagates an exception).
  struct ScratchSweep {
    SimDfs& dfs;
    const std::string& root;
    bool active;
    ~ScratchSweep() {
      if (active) dfs.remove_prefix(root);
    }
  } scratch_sweep{dfs, scratch_root, spill_mode};
  if (spill_mode) dfs.remove_prefix(scratch_root);

  // Deterministic placement for rescheduled and speculative attempts.
  const auto place = [&usable](std::uint64_t origin, std::uint64_t salt) {
    return usable[(origin + salt) % usable.size()];
  };

  // The node hosting the backup copy of a straggler: the next usable node
  // after the one the original ran on.
  const auto backup_node_for = [&usable](NodeId original) {
    const auto it = std::find(usable.begin(), usable.end(), original);
    const auto idx = static_cast<std::size_t>(it - usable.begin());
    return usable[(idx + 1) % usable.size()];
  };

  // Fault-attributable traffic: metered like any transfer and additionally
  // tallied as recovery overhead (a fault-free run never moves these bytes).
  const auto recovery_transfer = [&](NodeId src, NodeId dst,
                                     std::uint64_t bytes) {
    net.transfer(src, dst, bytes);
    if (src != dst) counters.add(counter::kRecoveryBytes, bytes);
  };

  // --- Distributed cache broadcast -------------------------------------
  std::unordered_map<std::string, std::shared_ptr<const DfsFile>> cache;
  SpanId broadcast_phase = 0;
  if (tracer != nullptr && !spec.cache_paths.empty()) {
    broadcast_phase = tracer->begin_phase(job_span, "broadcast");
  }
  for (const auto& path : spec.cache_paths) {
    auto file = dfs.open(path);
    // Ship the file to every live node other than its home (its home reads
    // it from local disk). This is the paper's "distribute to all nodes".
    // A node doomed to die mid-job still receives its (wasted) copy.
    std::uint64_t shipped = 0;
    for (NodeId node = 0; node < num_nodes; ++node) {
      if (!cluster_.is_alive(node)) continue;
      net.transfer(file->home, node, file->bytes);
      if (tracer != nullptr) {
        tracer->record_transfer(broadcast_phase, SpanKind::kCacheBroadcast,
                                file->home, node, file->bytes, path);
      }
      if (node != file->home) shipped += file->bytes;
    }
    counters.add(counter::kCacheBroadcastBytes, shipped);
    cache.emplace(path, std::move(file));
  }
  if (broadcast_phase != 0) tracer->end(broadcast_phase);

  // --- Map phase --------------------------------------------------------
  const std::vector<Split> splits = build_splits(dfs, spec);
  PAIRMR_REQUIRE(!splits.empty(), "job has no input records");
  const auto num_map_tasks = static_cast<TaskIndex>(splits.size());

  PAIRMR_LOG(kInfo) << "job '" << spec.name << "': " << num_map_tasks
                    << " map task(s), " << num_reducers << " reduce task(s)";

  // map_outputs[m][r] = partition destined for reduce task r from map
  // task m (scratch runs + in-memory bucket; see MapOutputPartition).
  std::vector<std::vector<MapOutputPartition>> map_outputs(num_map_tasks);
  std::vector<TaskStats> map_stats(num_map_tasks);

  const std::uint32_t max_attempts = std::max(1u, spec.max_task_attempts);

  const SpanId map_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "map") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      tasks.push_back([&, m] {
        const Split& split = splits[m];
        const NodeId home = split.file->home;
        std::uint64_t input_bytes = 0;
        for (std::size_t i = split.begin; i < split.end; ++i) {
          input_bytes += split.file->records[i].size_bytes();
        }

        // One full execution of the task's user code on `node`. Each
        // execution gets a fresh context and counter bag; only the
        // execution that is ultimately kept merges into the job. `tag`
        // names the execution's scratch directory (spill mode), so
        // discarded attempts never collide with kept ones.
        struct MapExecution {
          std::unique_ptr<MapContext> ctx;
          std::unique_ptr<Counters> counters;
          // Per-partition scratch runs, oldest first (spill mode only).
          std::vector<std::vector<std::shared_ptr<const DfsFile>>> spilled;
        };
        const auto execute = [&](NodeId node, SpanId attempt_span,
                                 const std::string& tag) {
          MapExecution e;
          e.counters = std::make_unique<Counters>();
          e.spilled.resize(spill_mode ? num_reducers : 0);
          ScopedSpan exec(tracer,
                          tracer != nullptr
                              ? tracer->begin_op(attempt_span,
                                                 SpanKind::kMapExec, node)
                              : 0);
          auto ctx = std::make_unique<MapContext>(
              node, m, partitioner, num_reducers, *e.counters, cache,
              split.file->path, tracer, exec.id());
          std::uint32_t spill_seq = 0;
          if (spill_mode) {
            // Installed spill hook: before an emission would push tracked
            // buffer bytes past the budget, every non-empty bucket is
            // combined (Hadoop combines per spill), sorted with the
            // shuffle ordering, and written to scratch as one sorted run.
            ctx->attach_budget(
                budget.bytes, [&](std::vector<std::vector<Record>>& buckets) {
                  ScopedSpan sp(tracer,
                                tracer != nullptr
                                    ? tracer->begin_op(exec.id(),
                                                       SpanKind::kSpillWrite,
                                                       node)
                                    : 0);
                  std::uint64_t sp_bytes = 0;
                  std::uint64_t sp_records = 0;
                  for (std::uint32_t p = 0; p < buckets.size(); ++p) {
                    auto& bucket = buckets[p];
                    if (bucket.empty()) continue;
                    if (spec.combiner_factory) {
                      run_combiner(spec, node, m, *e.counters, bucket, tracer,
                                   sp.id());
                    }
                    sort_records_stable(bucket);
                    const std::string path =
                        scratch_root + tag + "/spill-" +
                        std::to_string(spill_seq) + "-r" + std::to_string(p);
                    dfs.write_file(path, node, std::move(bucket));
                    bucket.clear();
                    auto file = dfs.open(path);
                    e.counters->add(counter::kSpillRuns, 1);
                    e.counters->add(counter::kSpillBytes, file->bytes);
                    sp_bytes += file->bytes;
                    sp_records += file->records.size();
                    e.spilled[p].push_back(std::move(file));
                  }
                  ++spill_seq;
                  sp.set_payload(sp_bytes, sp_records);
                });
          }
          auto mapper = spec.mapper_factory();
          mapper->setup(*ctx);
          for (std::size_t i = split.begin; i < split.end; ++i) {
            const Record& rec = split.file->records[i];
            mapper->map(rec.key, rec.value, *ctx);
          }
          mapper->cleanup(*ctx);
          if (spill_mode) {
            // Finalize the leftover buffer into the task's last, in-memory
            // sorted run — combined and ordered exactly like a spilled one.
            ScopedSpan fin(tracer,
                           tracer != nullptr
                               ? tracer->begin_op(exec.id(), SpanKind::kSpill,
                                                  node)
                               : 0);
            std::uint64_t fin_bytes = 0;
            std::uint64_t fin_records = 0;
            for (auto& bucket : ctx->buckets()) {
              if (bucket.empty()) continue;
              if (spec.combiner_factory) {
                run_combiner(spec, node, m, *e.counters, bucket, tracer,
                             fin.id());
              }
              sort_records_stable(bucket);
              for (const auto& rec : bucket) fin_bytes += rec.size_bytes();
              fin_records += bucket.size();
            }
            fin.set_payload(fin_bytes, fin_records);
            // Tracked buffers never outgrow the budget; the single record
            // larger than the whole budget is the one allowed overshoot.
            PAIRMR_CHECK(
                ctx->max_tracked_bytes() <=
                    std::max(budget.bytes, ctx->max_record_bytes()),
                "map task exceeded its memory budget");
            if (ctx->max_tracked_bytes() != 0) {
              e.counters->note_max(counter::kMemoryMaxTrackedBytes,
                                   ctx->max_tracked_bytes());
            }
          }
          exec.set_payload(ctx->bytes_emitted(), ctx->records_emitted());
          e.ctx = std::move(ctx);
          return e;
        };

        // Attempt loop (Hadoop task retry): a failed attempt's emissions
        // and counters are discarded wholesale; only the kept attempt's
        // state merges into the job. Injected faults retry without
        // consuming max_task_attempts (they are environmental, not bugs).
        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "map task retried too often");
          // Attempt 0 runs data-local (even on a node about to die — that
          // is what makes its loss cost something); retries move on.
          const NodeId node = (attempt == 0 && cluster_.is_alive(home))
                                  ? home
                                  : place(home, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(map_phase, TaskKind::kMap, m, attempt,
                                       node)
                  : 0;
          // Reading the split away from its home replica travels the wire;
          // only recovery from faults ever needs that.
          if (node != home) {
            recovery_transfer(home, node, input_bytes);
            if (tracer != nullptr) {
              tracer->record_transfer(att, SpanKind::kInputRead, home, node,
                                      input_bytes, "recovery-reread");
            }
          }

          if ((doomed && node == *doomed) ||
              plan.kills_task(TaskKind::kMap, m, attempt)) {
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, doomed && node == *doomed
                                            ? "node-lost"
                                            : "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          const std::string tag =
              "m" + std::to_string(m) + "-a" + std::to_string(attempt);
          MapExecution ex;
          try {
            ex = execute(node, att, tag);
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            // A failed attempt may have spilled before dying; its scratch
            // runs are garbage now.
            if (spill_mode) dfs.remove_prefix(scratch_root + tag + "/");
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "map task " << m << " attempt " << attempt
                              << " failed; retrying";
            continue;
          }
          NodeId final_node = node;
          SpanId kept_span = att;

          // Speculative re-execution: a straggling task gets a backup copy
          // on another node; the plan decides the race. The loser's work
          // (and input re-read) is wasted, but the output is byte-identical
          // either way, so determinism survives.
          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kMap, m)) {
            const NodeId backup = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(map_phase, TaskKind::kMap, m,
                                         attempt, backup,
                                         /*speculative=*/true)
                    : 0;
            if (backup != home) {
              recovery_transfer(home, backup, input_bytes);
              if (tracer != nullptr) {
                tracer->record_transfer(batt, SpanKind::kInputRead, home,
                                        backup, input_bytes,
                                        "recovery-reread");
              }
            }
            MapExecution backup_ex = execute(backup, batt, tag + "-b");
            counters.add(counter::kTasksSpeculative, 1);
            SpanId loser_span = batt;
            std::string loser_tag = tag + "-b";
            if (plan.backup_wins(TaskKind::kMap, m)) {
              counters.add(counter::kSpeculativeWins, 1);
              ex = std::move(backup_ex);
              final_node = backup;
              loser_span = att;
              loser_tag = tag;
              kept_span = batt;
            }
            // The losing copy's scratch runs are wasted work.
            if (spill_mode) dfs.remove_prefix(scratch_root + loser_tag + "/");
            if (tracer != nullptr) {
              tracer->mark_faulted(loser_span, "lost-race");
              tracer->end(loser_span);
            }
          }

          MapContext& ctx = *ex.ctx;
          ex.counters->add(counter::kMapInputRecords,
                           split.end - split.begin);
          ex.counters->add(counter::kMapOutputRecords,
                           ctx.records_emitted());
          ex.counters->add(counter::kMapOutputBytes, ctx.bytes_emitted());

          // Spill mode combines per run inside execute(); the in-memory
          // path combines once here, over the full settled buckets.
          if (spec.combiner_factory && !spill_mode) {
            ScopedSpan spill(tracer,
                             tracer != nullptr
                                 ? tracer->begin_op(kept_span,
                                                    SpanKind::kSpill,
                                                    final_node)
                                 : 0);
            for (auto& bucket : ctx.buckets()) {
              if (!bucket.empty()) {
                run_combiner(spec, final_node, m, *ex.counters, bucket,
                             tracer, spill.id());
              }
            }
            if (tracer != nullptr) {
              std::uint64_t out_bytes = 0;
              std::uint64_t out_records = 0;
              for (const auto& bucket : ctx.buckets()) {
                out_records += bucket.size();
                for (const auto& rec : bucket) out_bytes += rec.size_bytes();
              }
              spill.set_payload(out_bytes, out_records);
            }
          }

          map_stats[m] = TaskStats{
              .index = m,
              .node = final_node,
              .input_records = split.end - split.begin,
              .output_records = ctx.records_emitted(),
              .output_bytes = ctx.bytes_emitted(),
          };
          auto& parts = map_outputs[m];
          parts.resize(num_reducers);
          for (std::uint32_t p = 0; p < num_reducers; ++p) {
            MapOutputPartition& part = parts[p];
            if (spill_mode) part.runs = std::move(ex.spilled[p]);
            part.final_run = std::move(ctx.buckets()[p]);
            part.records = part.final_run.size();
            part.bytes = 0;
            for (const auto& rec : part.final_run) {
              part.bytes += rec.size_bytes();
            }
            for (const auto& run : part.runs) {
              part.bytes += run->bytes;
              part.records += run->records.size();
            }
          }
          counters.merge(*ex.counters);
          if (tracer != nullptr) {
            tracer->end(kept_span, ctx.bytes_emitted(),
                        ctx.records_emitted());
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (map_phase != 0) tracer->end(map_phase);

  // The doomed node is gone for good once the map phase ends: reduce
  // placement and every later job schedule around it.
  if (doomed) {
    PAIRMR_LOG(kWarn) << "node " << *doomed << " lost during job '"
                      << spec.name << "'";
    cluster_.fail_node(*doomed);
  }

  // --- Map-only: write map outputs directly, no shuffle ------------------
  if (spec.map_only) {
    const SpanId write_phase =
        tracer != nullptr ? tracer->begin_phase(job_span, "write") : 0;
    std::vector<std::string> output_paths(num_map_tasks);
    for (TaskIndex m = 0; m < num_map_tasks; ++m) {
      char name[32];
      std::snprintf(name, sizeof(name), "part-m-%05u", m);
      const std::string path = spec.output_dir + "/" + name;
      PAIRMR_CHECK(map_outputs[m].size() == 1 && map_outputs[m][0].runs.empty(),
                   "map-only job must have one unspilled bucket");
      {
        ScopedSpan write(tracer,
                         tracer != nullptr
                             ? tracer->begin_op(write_phase,
                                                SpanKind::kOutputWrite,
                                                map_stats[m].node, path)
                             : 0);
        write.set_payload(map_stats[m].output_bytes,
                          map_stats[m].output_records);
        dfs.write_file(path, map_stats[m].node,
                       std::move(map_outputs[m][0].final_run));
      }
      output_paths[m] = path;
    }
    if (tracer != nullptr) {
      tracer->end(write_phase);
      tracer->end(job_span);
    }
    JobResult result;
    result.job_name = spec.name;
    result.output_dir = spec.output_dir;
    result.output_paths = std::move(output_paths);
    result.counters = counters.snapshot();
    result.map_tasks = std::move(map_stats);
    result.elapsed_seconds = timer.elapsed_seconds();
    return result;
  }

  // --- Shuffle + reduce phase -------------------------------------------
  std::vector<TaskStats> reduce_stats(num_reducers);
  std::vector<std::string> output_paths(num_reducers);

  const SpanId reduce_phase =
      tracer != nullptr ? tracer->begin_phase(job_span, "reduce") : 0;
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_reducers);
    for (TaskIndex r = 0; r < num_reducers; ++r) {
      tasks.push_back([&, r] {
        // An injected fetch drop fires once per (reduce, map) pair.
        std::vector<bool> dropped(num_map_tasks, false);

        // One full execution of reduce task r: shuffle + sort + reduce.
        // Fetch volumes are recorded but metered by the caller, which
        // knows whether the execution's traffic was useful or wasted.
        struct Execution {
          NodeId node = 0;
          SpanId span = 0;  // attempt span (0 when untraced)
          std::vector<std::pair<NodeId, std::uint64_t>> fetches;
          std::uint64_t local_bytes = 0;
          std::uint64_t remote_bytes = 0;
          std::uint64_t input_records = 0;
          std::uint64_t groups = 0;
          std::uint64_t max_group_records = 0;
          std::uint64_t max_group_bytes = 0;
          std::unique_ptr<Counters> counters;
          std::unique_ptr<ReduceContext> ctx;
        };

        const auto execute = [&](NodeId node, SpanId attempt_span,
                                 const std::string& tag) {
          Execution e;
          e.node = node;
          e.span = attempt_span;
          e.counters = std::make_unique<Counters>();
          // Fetch this reducer's partition from every map task, in
          // map-task order (deterministic). Partitions stay in place
          // until the task settles, so any re-execution can re-fetch.
          std::vector<Record> input;       // in-memory path
          std::vector<RunSource> sources;  // spill path: sorted runs
          if (!spill_mode) {
            std::size_t total = 0;
            for (TaskIndex m = 0; m < num_map_tasks; ++m) {
              total += map_outputs[m][r].final_run.size();
            }
            input.reserve(total);
          }
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            auto& part = map_outputs[m][r];
            const std::uint64_t bytes = part.bytes;
            const NodeId src = map_stats[m].node;
            if (!dropped[m] && plan.drops_fetch(r, m)) {
              // The first copy died mid-transfer and is thrown away; the
              // immediate re-fetch below is the one that counts.
              dropped[m] = true;
              recovery_transfer(src, node, bytes);
              counters.add(counter::kShuffleFetchRetries, 1);
              if (tracer != nullptr) {
                tracer->record_transfer(attempt_span,
                                        SpanKind::kShuffleFetch, src, node,
                                        bytes, "dropped-mid-transfer");
              }
            }
            ScopedSpan fetch(
                tracer, tracer != nullptr
                            ? tracer->begin_transfer(attempt_span,
                                                     SpanKind::kShuffleFetch,
                                                     src, node)
                            : 0);
            (src == node ? e.local_bytes : e.remote_bytes) += bytes;
            e.fetches.emplace_back(src, bytes);
            e.input_records += part.records;
            fetch.set_payload(bytes, part.records);
            if (spill_mode) {
              // Source order — (map task, run age), final run last — plus
              // GroupIterator's low-source-first tie-break reproduces the
              // in-memory path's stable sort byte for byte.
              for (const auto& run : part.runs) {
                sources.push_back(RunSource::from_file(run));
              }
              if (!part.final_run.empty()) {
                if (movable_shuffle) {
                  sources.push_back(
                      RunSource::from_records(std::move(part.final_run)));
                } else {
                  auto copy = part.final_run;
                  sources.push_back(RunSource::from_records(std::move(copy)));
                }
              }
            } else if (movable_shuffle) {
              auto& bucket = part.final_run;
              input.insert(input.end(), std::make_move_iterator(bucket.begin()),
                           std::make_move_iterator(bucket.end()));
            } else {
              input.insert(input.end(), part.final_run.begin(),
                           part.final_run.end());
            }
          }

          ScopedSpan exec(tracer,
                          tracer != nullptr
                              ? tracer->begin_op(attempt_span,
                                                 SpanKind::kReduceExec, node)
                              : 0);
          e.ctx = std::make_unique<ReduceContext>(node, r, *e.counters,
                                                  &cache, tracer, exec.id());
          auto reducer = spec.reducer_factory();
          reducer->setup(*e.ctx);
          const auto consume = [&](const Bytes& key,
                                   const std::vector<Bytes>& vals) {
            ++e.groups;
            std::uint64_t group_bytes = 0;
            for (const auto& v : vals) group_bytes += key.size() + v.size();
            e.max_group_records =
                std::max<std::uint64_t>(e.max_group_records, vals.size());
            e.max_group_bytes = std::max(e.max_group_bytes, group_bytes);
            reducer->reduce(key, vals, *e.ctx);
          };
          if (spill_mode) {
            // Too many runs for one merge: fold consecutive batches into
            // wider scratch runs first (Hadoop's io.sort.factor passes),
            // then stream groups without ever materializing the partition.
            if (sources.size() > budget.merge_fan_in) {
              ScopedSpan merge(tracer,
                               tracer != nullptr
                                   ? tracer->begin_op(exec.id(),
                                                      SpanKind::kMergePass,
                                                      node)
                                   : 0);
              MergeStats merge_stats;
              sources = merge_to_fan_in(dfs, scratch_root + tag + "/", node,
                                        std::move(sources),
                                        budget.merge_fan_in, merge_stats);
              merge.set_payload(merge_stats.bytes_written,
                                merge_stats.runs_written);
              e.counters->add(counter::kMergePasses, merge_stats.passes);
            }
            GroupIterator groups(std::move(sources));
            while (groups.next()) consume(groups.key(), groups.values());
            if (groups.max_head_bytes() != 0) {
              e.counters->note_max(counter::kMemoryMaxTrackedBytes,
                                   groups.max_head_bytes());
            }
          } else {
            group_by_key(input, consume);
          }
          reducer->cleanup(*e.ctx);
          exec.set_payload(e.ctx->bytes_emitted(), e.ctx->output().size());
          return e;
        };

        // The shuffle traffic of an attempt that fetched its input but
        // never published output (killed, crashed, or lost the race).
        // `attempt_span` is set only when the attempt never executed (no
        // fetch spans exist yet); executions record their own.
        const auto charge_wasted_fetches = [&](NodeId node,
                                               SpanId attempt_span) {
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            const std::uint64_t bytes = map_outputs[m][r].bytes;
            recovery_transfer(map_stats[m].node, node, bytes);
            if (tracer != nullptr && attempt_span != 0) {
              tracer->record_transfer(attempt_span, SpanKind::kShuffleFetch,
                                      map_stats[m].node, node, bytes,
                                      "wasted");
            }
          }
        };

        std::uint32_t user_failures = 0;
        for (std::uint32_t attempt = 0;; ++attempt) {
          PAIRMR_CHECK(attempt < kAttemptCap, "reduce task retried too often");
          const NodeId node = place(r, attempt);
          const SpanId att =
              tracer != nullptr
                  ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                       attempt, node)
                  : 0;

          if (plan.kills_task(TaskKind::kReduce, r, attempt)) {
            // Aborted mid-task: its shuffle happened and was for nothing.
            charge_wasted_fetches(node, att);
            counters.add(counter::kTasksRetried, 1);
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "killed-by-fault-plan");
              tracer->end(att);
            }
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt " << attempt
                              << " killed by fault plan; retrying";
            continue;
          }

          const std::string tag =
              "r" + std::to_string(r) + "-a" + std::to_string(attempt);
          Execution winner;
          try {
            winner = execute(node, att, tag);
          } catch (...) {
            const bool fatal = ++user_failures >= max_attempts;
            // Merge-pass scratch of the failed attempt is garbage now.
            if (spill_mode) dfs.remove_prefix(scratch_root + tag + "/");
            if (tracer != nullptr) {
              tracer->mark_faulted(att, "user-error");
              tracer->end(att);
            }
            if (fatal) throw;
            charge_wasted_fetches(node, 0);
            counters.add(counter::kTasksRetried, 1);
            PAIRMR_LOG(kWarn) << "reduce task " << r << " attempt "
                              << attempt << " failed; retrying";
            continue;
          }

          if (spec.speculative_execution && usable.size() > 1 &&
              plan.is_straggler(TaskKind::kReduce, r)) {
            const NodeId backup_node = backup_node_for(node);
            const SpanId batt =
                tracer != nullptr
                    ? tracer->begin_task(reduce_phase, TaskKind::kReduce, r,
                                         attempt, backup_node,
                                         /*speculative=*/true)
                    : 0;
            Execution backup = execute(backup_node, batt, tag + "-b");
            counters.add(counter::kTasksSpeculative, 1);
            std::string loser_tag = tag + "-b";
            if (plan.backup_wins(TaskKind::kReduce, r)) {
              counters.add(counter::kSpeculativeWins, 1);
              std::swap(winner, backup);
              loser_tag = tag;
            }
            // After the optional swap, `backup` holds the losing execution.
            if (spill_mode) dfs.remove_prefix(scratch_root + loser_tag + "/");
            charge_wasted_fetches(backup.node, 0);
            if (tracer != nullptr) {
              tracer->mark_faulted(backup.span, "lost-race");
              tracer->end(backup.span);
            }
          }

          // Winning execution: release map outputs, meter its shuffle,
          // publish counters and output.
          for (TaskIndex m = 0; m < num_map_tasks; ++m) {
            map_outputs[m][r].release();
          }
          for (const auto& [src, bytes] : winner.fetches) {
            net.transfer(src, winner.node, bytes);
          }

          winner.counters->add(counter::kShuffleBytesLocal,
                               winner.local_bytes);
          winner.counters->add(counter::kShuffleBytesRemote,
                               winner.remote_bytes);
          winner.counters->add(counter::kReduceInputGroups, winner.groups);
          winner.counters->add(counter::kReduceInputRecords,
                               winner.input_records);
          winner.counters->add(counter::kReduceOutputRecords,
                               winner.ctx->output().size());
          winner.counters->add(counter::kReduceOutputBytes,
                               winner.ctx->bytes_emitted());
          winner.counters->note_max(counter::kReduceMaxGroupRecords,
                                    winner.max_group_records);
          winner.counters->note_max(counter::kReduceMaxGroupBytes,
                                    winner.max_group_bytes);
          counters.merge(*winner.counters);

          reduce_stats[r] = TaskStats{
              .index = r,
              .node = winner.node,
              .input_records = winner.input_records,
              .output_records = winner.ctx->output().size(),
              .output_bytes = winner.ctx->bytes_emitted(),
              .max_group_records = winner.max_group_records,
              .max_group_bytes = winner.max_group_bytes,
          };

          char name[32];
          std::snprintf(name, sizeof(name), "part-r-%05u", r);
          const std::string path = spec.output_dir + "/" + name;
          {
            ScopedSpan write(tracer,
                             tracer != nullptr
                                 ? tracer->begin_op(winner.span,
                                                    SpanKind::kOutputWrite,
                                                    winner.node, path)
                                 : 0);
            write.set_payload(reduce_stats[r].output_bytes,
                              reduce_stats[r].output_records);
            dfs.write_file(path, winner.node,
                           std::move(winner.ctx->output()));
          }
          output_paths[r] = path;
          if (tracer != nullptr) {
            tracer->end(winner.span, reduce_stats[r].output_bytes,
                        reduce_stats[r].output_records);
          }
          break;
        }
      });
    }
    cluster_.pool().run_all(std::move(tasks));
  }
  if (reduce_phase != 0) tracer->end(reduce_phase);
  if (tracer != nullptr) tracer->end(job_span);

  JobResult result;
  result.job_name = spec.name;
  result.output_dir = spec.output_dir;
  result.output_paths = std::move(output_paths);
  result.counters = counters.snapshot();
  result.map_tasks = std::move(map_stats);
  result.reduce_tasks = std::move(reduce_stats);
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pairmr::mr
