#include "mr/cluster.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace pairmr::mr {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      dfs_(config.num_nodes),
      network_(config.num_nodes),
      pool_(config.worker_threads),
      alive_(config.num_nodes, 1) {
  PAIRMR_REQUIRE(config.num_nodes > 0, "cluster needs at least one node");
}

bool Cluster::is_alive(NodeId node) const {
  PAIRMR_REQUIRE(node < alive_.size(), "node id out of range");
  return alive_[node] != 0;
}

std::uint32_t Cluster::num_alive() const {
  std::uint32_t n = 0;
  for (const auto a : alive_) n += a;
  return n;
}

void Cluster::fail_node(NodeId node) {
  PAIRMR_REQUIRE(node < alive_.size(), "node id out of range");
  if (alive_[node] == 0) return;
  PAIRMR_REQUIRE(num_alive() > 1, "cannot fail the last alive node");
  alive_[node] = 0;
}

void Cluster::restore_node(NodeId node) {
  PAIRMR_REQUIRE(node < alive_.size(), "node id out of range");
  alive_[node] = 1;
}

void Cluster::set_tracer(Tracer* tracer) { tracer_ = tracer; }

std::vector<std::string> Cluster::scatter_records(
    const std::string& dir, std::vector<Record> records,
    std::uint32_t files_per_node) {
  PAIRMR_REQUIRE(files_per_node > 0, "files_per_node must be positive");
  const std::uint32_t total_files = config_.num_nodes * files_per_node;
  std::vector<std::vector<Record>> buckets(total_files);
  for (std::size_t i = 0; i < records.size(); ++i) {
    buckets[i % total_files].push_back(std::move(records[i]));
  }
  std::vector<std::string> paths;
  paths.reserve(total_files);
  for (std::uint32_t f = 0; f < total_files; ++f) {
    char name[32];
    std::snprintf(name, sizeof(name), "input-%05u", f);
    const std::string path = dir + "/" + name;
    dfs_.write_file(path, /*home=*/f % config_.num_nodes,
                    std::move(buckets[f]));
    paths.push_back(path);
  }
  return paths;
}

std::vector<Record> Cluster::gather_records(const std::string& prefix) const {
  std::vector<Record> out;
  for (const auto& path : dfs_.list(prefix)) {
    const auto file = dfs_.open(path);
    out.insert(out.end(), file->records.begin(), file->records.end());
  }
  return out;
}

}  // namespace pairmr::mr
