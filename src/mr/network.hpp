// Byte-accurate network meter for the simulated cluster.
//
// The paper's "Communication Costs" metric (Table 1) counts data shipped
// between nodes. Every cross-node transfer in the engine — shuffle fetches,
// distributed-cache broadcasts, remote input reads — goes through this
// meter; node-local movement is tallied separately and is free.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "mr/types.hpp"

namespace pairmr::mr {

class NetworkMeter {
 public:
  explicit NetworkMeter(std::uint32_t num_nodes);

  // Record `bytes` moving from `src` to `dst`. Same-node moves count as
  // local traffic (disk/loopback), not network.
  void transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  std::uint64_t remote_bytes() const { return remote_bytes_.load(); }
  std::uint64_t local_bytes() const { return local_bytes_.load(); }
  std::uint64_t remote_transfers() const { return remote_transfers_.load(); }

  // Bytes sent by / received at one node (remote traffic only).
  std::uint64_t sent_by(NodeId node) const;
  std::uint64_t received_at(NodeId node) const;

  // Zero every counter. Safe to call while transfers are in flight: each
  // transfer's counter updates land entirely before or entirely after the
  // reset (never straddling it), so totals and per-node tallies always add
  // up. Individual getters remain unsynchronized snapshots.
  void reset();

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(sent_.size());
  }

 private:
  // Held shared by transfer() (increments stay concurrent via the atomics)
  // and exclusively by reset(), so a reset cannot interleave with the
  // multi-counter update of one transfer.
  mutable std::shared_mutex reset_mutex_;
  std::atomic<std::uint64_t> remote_bytes_{0};
  std::atomic<std::uint64_t> local_bytes_{0};
  std::atomic<std::uint64_t> remote_transfers_{0};
  std::vector<std::atomic<std::uint64_t>> sent_;
  std::vector<std::atomic<std::uint64_t>> received_;
};

}  // namespace pairmr::mr
