// Byte-accurate network meter for the simulated cluster.
//
// The paper's "Communication Costs" metric (Table 1) counts data shipped
// between nodes. Every cross-node transfer in the engine — shuffle fetches,
// distributed-cache broadcasts, remote input reads — goes through this
// meter; node-local movement is tallied separately and is free.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "mr/types.hpp"

namespace pairmr::mr {

class NetworkMeter {
 public:
  explicit NetworkMeter(std::uint32_t num_nodes);

  // Record `bytes` moving from `src` to `dst`. Same-node moves count as
  // local traffic (disk/loopback), not network.
  void transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  std::uint64_t remote_bytes() const { return remote_bytes_.load(); }
  std::uint64_t local_bytes() const { return local_bytes_.load(); }
  std::uint64_t remote_transfers() const { return remote_transfers_.load(); }

  // Bytes sent by / received at one node (remote traffic only).
  std::uint64_t sent_by(NodeId node) const;
  std::uint64_t received_at(NodeId node) const;

  void reset();

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(sent_.size());
  }

 private:
  std::atomic<std::uint64_t> remote_bytes_{0};
  std::atomic<std::uint64_t> local_bytes_{0};
  std::atomic<std::uint64_t> remote_transfers_{0};
  std::vector<std::atomic<std::uint64_t>> sent_;
  std::vector<std::atomic<std::uint64_t>> received_;
};

}  // namespace pairmr::mr
