// The simulated cluster: nodes, DFS, network meter, worker pool.
//
// A Cluster corresponds to the paper's execution environment: `n` nodes
// connected by a (metered) network, each executing tasks on local data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/fs.hpp"
#include "mr/network.hpp"
#include "mr/thread_pool.hpp"
#include "mr/types.hpp"

namespace pairmr::mr {

class Tracer;  // mr/trace.hpp

struct ClusterConfig {
  // Simulated node count (the paper's `n`).
  std::uint32_t num_nodes = 4;

  // Host threads executing simulated tasks; 0 = hardware concurrency.
  // Execution results are deterministic regardless of this value.
  std::uint32_t worker_threads = 0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  std::uint32_t num_nodes() const { return config_.num_nodes; }
  const ClusterConfig& config() const { return config_; }

  // --- Node liveness -----------------------------------------------------
  // A failed node hosts no further task attempts; the engine schedules
  // around it (and a job's FaultPlan may fail one mid-run). Its DFS
  // replicas stay readable — the simulator assumes DFS replication — but
  // reads of them become remote, metered traffic. Liveness persists across
  // jobs until restore_node is called.
  bool is_alive(NodeId node) const;
  std::uint32_t num_alive() const;
  // Marking the last alive node failed throws (the cluster would be dead).
  void fail_node(NodeId node);
  void restore_node(NodeId node);

  // --- Tracing ------------------------------------------------------------
  // Attach a tracer (mr/trace.hpp): every job the engine runs on this
  // cluster records task/phase spans into it. Non-owning — the tracer must
  // outlive the jobs; nullptr (the default) disables tracing entirely.
  // A JobSpec::tracer overrides this per job.
  void set_tracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

  SimDfs& dfs() { return dfs_; }
  const SimDfs& dfs() const { return dfs_; }

  NetworkMeter& network() { return network_; }
  const NetworkMeter& network() const { return network_; }

  ThreadPool& pool() { return pool_; }

  // Write `records` as one DFS file per node, round-robin by record, under
  // `dir/input-NNNNN`. This models a dataset already distributed across
  // the cluster by a preceding job (the paper's §3 premise). Returns the
  // created paths.
  std::vector<std::string> scatter_records(const std::string& dir,
                                           std::vector<Record> records,
                                           std::uint32_t files_per_node = 1);

  // Read every record under `prefix`, concatenated in path order. Local
  // convenience for tests/examples; does not touch the network meter.
  std::vector<Record> gather_records(const std::string& prefix) const;

 private:
  ClusterConfig config_;
  SimDfs dfs_;
  NetworkMeter network_;
  ThreadPool pool_;
  std::vector<std::uint8_t> alive_;  // per node; 1 = alive
  Tracer* tracer_ = nullptr;         // non-owning; nullptr = tracing off
};

}  // namespace pairmr::mr
