// ASCII table/series printer for bench harnesses.
//
// Every figure/table bench prints through this so outputs share one format:
// a header row, aligned columns, and an optional caption naming the paper
// artifact being regenerated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pairmr {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Cells are preformatted strings; helpers below format common types.
  void add_row(std::vector<std::string> cells);

  // Render with column alignment to `os`. Caption (if set) prints first.
  void print(std::ostream& os) const;

  void set_caption(std::string caption) { caption_ = std::move(caption); }

  std::size_t num_rows() const { return rows_.size(); }

  static std::string num(std::uint64_t v);
  static std::string num(double v, int precision = 3);
  // Scientific notation, for the log-log figure series.
  static std::string sci(double v, int precision = 3);

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pairmr
