// Byte-size units and human-readable formatting.
//
// The paper's Figures 8/9 use "MB/GB/TB" without stating the base; we use
// binary units throughout and record the choice in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>

namespace pairmr {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

// "1.5 GiB"-style rendering for logs and bench tables.
std::string format_bytes(std::uint64_t bytes);

// Parse "200MiB", "1TiB", "512" (bytes). Throws PreconditionError on junk.
std::uint64_t parse_bytes(const std::string& text);

}  // namespace pairmr
