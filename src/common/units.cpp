#include "common/units.hpp"

#include <array>
#include <cctype>
#include <cstdio>

#include "common/check.hpp"

namespace pairmr {

std::string format_bytes(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t size;
    const char* name;
  };
  static constexpr std::array<Unit, 4> units{{
      {kTiB, "TiB"}, {kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}}};
  for (const auto& u : units) {
    if (bytes >= u.size) {
      const double value = static_cast<double>(bytes) /
                           static_cast<double>(u.size);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.2f %s", value, u.name);
      return buf;
    }
  }
  return std::to_string(bytes) + " B";
}

std::uint64_t parse_bytes(const std::string& text) {
  PAIRMR_REQUIRE(!text.empty(), "empty byte-size string");
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.')) {
    ++pos;
  }
  PAIRMR_REQUIRE(pos > 0, "byte-size string must start with a number");
  const double value = std::stod(text.substr(0, pos));
  PAIRMR_REQUIRE(value >= 0.0, "byte size must be non-negative");
  std::string suffix = text.substr(pos);
  while (!suffix.empty() && suffix.front() == ' ') suffix.erase(0, 1);
  std::uint64_t mult = 1;
  if (suffix.empty() || suffix == "B") {
    mult = 1;
  } else if (suffix == "KiB" || suffix == "KB" || suffix == "K") {
    mult = kKiB;
  } else if (suffix == "MiB" || suffix == "MB" || suffix == "M") {
    mult = kMiB;
  } else if (suffix == "GiB" || suffix == "GB" || suffix == "G") {
    mult = kGiB;
  } else if (suffix == "TiB" || suffix == "TB" || suffix == "T") {
    mult = kTiB;
  } else {
    PAIRMR_REQUIRE(false, "unknown byte-size suffix: " + suffix);
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(mult));
}

}  // namespace pairmr
