// FNV-1a byte hashing — the default MapReduce partitioner's hash. A fixed,
// platform-independent function keeps shuffle placement deterministic
// across runs (std::hash gives no such guarantee).
#pragma once

#include <cstdint>
#include <string_view>

namespace pairmr {

constexpr std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}

}  // namespace pairmr
