// Runtime check macros and error types shared by all pairmr libraries.
//
// Checks are always on (they guard API contracts, not internal hot loops);
// hot-loop assertions use PAIRMR_DCHECK, compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pairmr {

// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Thrown when an internal invariant does not hold (a bug in pairmr itself).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_check(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'P') throw PreconditionError(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace pairmr

// Precondition on caller-supplied arguments.
#define PAIRMR_REQUIRE(expr, msg)                                       \
  do {                                                                  \
    if (!(expr))                                                        \
      ::pairmr::detail::fail_check("Precondition", #expr, __FILE__,     \
                                   __LINE__, (msg));                    \
  } while (false)

// Internal invariant; failure indicates a pairmr bug.
#define PAIRMR_CHECK(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::pairmr::detail::fail_check("Invariant", #expr, __FILE__,        \
                                   __LINE__, (msg));                    \
  } while (false)

#ifdef NDEBUG
#define PAIRMR_DCHECK(expr, msg) \
  do {                           \
  } while (false)
#else
#define PAIRMR_DCHECK(expr, msg) PAIRMR_CHECK(expr, msg)
#endif
