// Deterministic, seedable RNG for workload generators and tests.
//
// splitmix64 core: tiny, fast, and identical on every platform, so every
// bench/test run regenerates byte-identical datasets from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace pairmr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free modulo is fine here; generators don't need perfect
    // uniformity, only determinism and decent spread.
    return next_u64() % bound;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Standard normal via Box–Muller (one value per call; simple > fast here).
  double next_gaussian() {
    double u1 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = next_double();
    const double two_pi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  // Derive an independent stream (for per-element generators).
  Rng fork(std::uint64_t salt) const {
    return Rng(state_ ^ (0xd1b54a32d192ed03ull * (salt + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace pairmr
