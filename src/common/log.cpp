#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pairmr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[pairmr %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace pairmr
