// Exact 64-bit integer math used by the distribution-scheme enumerations.
//
// All triangular-number arithmetic is kept in integers (no floating point)
// so pair labels invert exactly even for v close to 2^32.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace pairmr {

// Largest r with r*r <= x. Exact for all 64-bit inputs (the naive
// std::sqrt round-trip can be off by one above 2^52).
//
// Monotone integer Newton: the iterate sequence strictly decreases until
// it first reaches floor(sqrt(x)), at which point y >= r and the loop
// exits — no oscillation, no overflow (never computes r*r).
constexpr std::uint64_t isqrt(std::uint64_t x) {
  if (x < 2) return x;
  std::uint64_t r = x;
  // ceil(r/2) written overflow-safely ((r+1)/2 wraps at UINT64_MAX).
  std::uint64_t y = r / 2 + r % 2;
  while (y < r) {
    r = y;
    y = (r + x / r) / 2;
  }
  return r;
}

// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return a == 0 ? 0 : 1 + (a - 1) / b;
}

// n-th triangular number T(n) = n(n+1)/2, checked against overflow.
constexpr std::uint64_t triangular(std::uint64_t n) {
  // One of n, n+1 is even; divide first to delay overflow.
  const std::uint64_t a = (n % 2 == 0) ? n / 2 : n;
  const std::uint64_t b = (n % 2 == 0) ? n + 1 : (n + 1) / 2;
  return a * b;
}

// Number of unordered pairs over v elements: C(v,2) = v(v-1)/2.
constexpr std::uint64_t pair_count(std::uint64_t v) {
  return v < 2 ? 0 : triangular(v - 1);
}

// Largest n with T(n) <= x (inverse triangular). Exact.
constexpr std::uint64_t inv_triangular(std::uint64_t x) {
  // n ≈ (sqrt(8x+1)-1)/2; compute via isqrt then correct.
  std::uint64_t n = (isqrt(8 * x + 1) - 1) / 2;
  while (triangular(n + 1) <= x) ++n;
  while (n > 0 && triangular(n) > x) --n;
  return n;
}

// a*b with overflow check (both operands treated as sizes/counts).
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    PAIRMR_CHECK(false, "64-bit multiplication overflow");
  }
  return a * b;
}

// a+b with overflow check.
inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  if (b > std::numeric_limits<std::uint64_t>::max() - a) {
    PAIRMR_CHECK(false, "64-bit addition overflow");
  }
  return a + b;
}

}  // namespace pairmr
