// Minimal binary serialization used for MapReduce keys/values.
//
// Records crossing the simulated network are flat byte strings; these
// helpers give typed, length-prefixed framing on top. Integers are
// little-endian fixed width; u64 keys that must sort numerically under a
// lexicographic byte comparator use the *big*-endian `put_u64_ordered`.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace pairmr {

// Append-only encoder into an owned byte string. Multi-byte integers are
// staged in a local word buffer and appended in one call, not pushed
// byte-at-a-time — encode-heavy paths (element codec, shuffle keys) are
// hot enough for the difference to show up in bench_hotpath.
class BufWriter {
 public:
  BufWriter() = default;

  // Pre-size the underlying buffer when the encoded size is known
  // (encoded_element_size and friends), avoiding growth reallocations.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  void put_u8(std::uint8_t x) { buf_.push_back(static_cast<char>(x)); }

  void put_u32(std::uint32_t x) {
    char word[4];
    for (int i = 0; i < 4; ++i) word[i] = static_cast<char>(x >> (8 * i));
    buf_.append(word, sizeof(word));
  }

  void put_u64(std::uint64_t x) {
    char word[8];
    for (int i = 0; i < 8; ++i) word[i] = static_cast<char>(x >> (8 * i));
    buf_.append(word, sizeof(word));
  }

  // Big-endian: lexicographic byte order == numeric order. Use for keys.
  void put_u64_ordered(std::uint64_t x) {
    char word[8];
    for (int i = 0; i < 8; ++i) word[i] = static_cast<char>(x >> (8 * (7 - i)));
    buf_.append(word, sizeof(word));
  }

  void put_f64(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    put_u64(bits);
  }

  void put_bytes(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  // Raw append without a length prefix (caller frames it).
  void put_raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& str() const& { return buf_; }
  std::string str() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

// Sequential decoder over a borrowed byte range. The underlying storage
// must outlive the reader.
class BufReader {
 public:
  explicit BufReader(std::string_view data) : data_(data) {}

  std::uint8_t get_u8() {
    PAIRMR_REQUIRE(pos_ + 1 <= data_.size(), "serde underflow (u8)");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t get_u32() {
    PAIRMR_REQUIRE(pos_ + 4 <= data_.size(), "serde underflow (u32)");
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i)
      x |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return x;
  }

  std::uint64_t get_u64() {
    PAIRMR_REQUIRE(pos_ + 8 <= data_.size(), "serde underflow (u64)");
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i)
      x |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return x;
  }

  std::uint64_t get_u64_ordered() {
    PAIRMR_REQUIRE(pos_ + 8 <= data_.size(), "serde underflow (u64)");
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x = (x << 8) | static_cast<std::uint8_t>(data_[pos_ + i]);
    }
    pos_ += 8;
    return x;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  }

  std::string_view get_bytes() {
    const std::uint32_t len = get_u32();
    PAIRMR_REQUIRE(pos_ + len <= data_.size(), "serde underflow (bytes)");
    std::string_view out = data_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Convenience codecs for whole-string round trips.
inline std::string encode_u64_key(std::uint64_t x) {
  BufWriter w;
  w.put_u64_ordered(x);
  return std::move(w).str();
}

inline std::uint64_t decode_u64_key(std::string_view s) {
  BufReader r(s);
  return r.get_u64_ordered();
}

// Encode a vector<double> payload (used by numeric workloads).
inline std::string encode_f64_vec(const std::vector<double>& xs) {
  BufWriter w;
  w.reserve(4 + 8 * xs.size());
  w.put_u32(static_cast<std::uint32_t>(xs.size()));
  for (double x : xs) w.put_f64(x);
  return std::move(w).str();
}

inline std::vector<double> decode_f64_vec(std::string_view s) {
  BufReader r(s);
  const std::uint32_t n = r.get_u32();
  std::vector<double> xs;
  xs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) xs.push_back(r.get_f64());
  return xs;
}

}  // namespace pairmr
