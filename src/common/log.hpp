// Leveled logging. Off (WARN) by default so tests and benches stay quiet;
// examples turn on INFO to narrate the pipeline.
#pragma once

#include <sstream>
#include <string>

namespace pairmr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Thread-safe (atomic).
void set_log_level(LogLevel level);
LogLevel log_level();

// Sink for a fully formatted line (adds level tag + newline, writes stderr).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& x) {
    os_ << x;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pairmr

#define PAIRMR_LOG(level)                                  \
  if (static_cast<int>(::pairmr::LogLevel::level) <        \
      static_cast<int>(::pairmr::log_level())) {           \
  } else                                                   \
    ::pairmr::detail::LogStream(::pairmr::LogLevel::level)
