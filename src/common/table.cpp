#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace pairmr {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PAIRMR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PAIRMR_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  if (!caption_.empty()) os << caption_ << "\n";

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };

  auto print_rule = [&]() {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << "+";
    }
    os << "\n";
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TablePrinter::num(std::uint64_t v) { return std::to_string(v); }

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace pairmr
