// Compute kernels for the paper's motivating applications (§1): distance
// functions for clustering, inner products for covariance, document
// similarity, and mutual information for gene networks. Each kernel is a
// ComputeFn operating on encoded payloads, plus the plain-math function
// it wraps (unit-testable in isolation).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pairwise/pipeline.hpp"

namespace pairmr::workloads {

// --- result codec (8-byte double) ---------------------------------------
std::string encode_result(double value);
double decode_result(std::string_view bytes);

// --- plain math -----------------------------------------------------------
double euclidean_distance(const std::vector<double>& a,
                          const std::vector<double>& b);
double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b);
double inner_product(const std::vector<double>& a,
                     const std::vector<double>& b);

// Jaccard similarity of two sorted token-id sets.
double jaccard_similarity(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b);

// Mutual information (nats) between two equal-length samples, estimated
// with an equal-width 2-D histogram of `bins`×`bins` cells.
double mutual_information(const std::vector<double>& a,
                          const std::vector<double>& b, std::uint32_t bins);

// Levenshtein edit distance, O(|a|·|b|) time, O(min) space — the
// archetypal expensive comp() (sequence alignment flavor).
std::uint64_t edit_distance(std::string_view a, std::string_view b);

// --- payload decoding ------------------------------------------------------
std::vector<std::uint32_t> decode_token_set(std::string_view payload);

// --- ComputeFn wrappers (payloads as produced by generators.hpp) ----------
ComputeFn euclidean_kernel();
ComputeFn cosine_kernel();
ComputeFn inner_product_kernel();
ComputeFn jaccard_kernel();
ComputeFn mutual_information_kernel(std::uint32_t bins);
// Payloads are raw byte strings compared by Levenshtein distance.
ComputeFn edit_distance_kernel();

// A deliberately expensive kernel: `rounds` of arithmetic over the
// payload bytes. Used by benches to model compute-bound workloads where
// the broadcast approach shines.
ComputeFn expensive_blob_kernel(std::uint32_t rounds);

// --- decode-once variants (PreparedKernel, pipeline.hpp) ------------------
// Each prepares the typed payload once per working-set element and
// produces result bytes identical to its ComputeFn counterpart above;
// set both on a PairwiseJob:
//   job.compute = euclidean_kernel();
//   job.prepared = euclidean_prepared();
PreparedKernel euclidean_prepared();
PreparedKernel cosine_prepared();
PreparedKernel inner_product_prepared();
PreparedKernel jaccard_prepared();
PreparedKernel mutual_information_prepared(std::uint32_t bins);

// Keep-predicate for threshold pruning (e.g. DBSCAN's eps): keeps results
// with decode_result(r) <= threshold.
KeepFn keep_below(double threshold);
// Keeps results with decode_result(r) >= threshold (similarity cutoffs).
KeepFn keep_above(double threshold);

}  // namespace pairmr::workloads
