#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "pairwise/tokenset.hpp"

namespace pairmr::workloads {

std::vector<std::string> blob_payloads(std::uint64_t v, std::uint64_t bytes,
                                       std::uint64_t seed) {
  PAIRMR_REQUIRE(bytes > 0, "element size must be positive");
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(v);
  for (std::uint64_t i = 0; i < v; ++i) {
    Rng item = rng.fork(i);
    std::string payload;
    payload.reserve(bytes);
    while (payload.size() < bytes) {
      const std::uint64_t word = item.next_u64();
      for (int b = 0; b < 8 && payload.size() < bytes; ++b) {
        payload.push_back(static_cast<char>(word >> (8 * b)));
      }
    }
    out.push_back(std::move(payload));
  }
  return out;
}

std::vector<std::vector<double>> clustered_points(std::uint64_t v,
                                                  std::uint32_t dim,
                                                  std::uint32_t num_clusters,
                                                  double spread,
                                                  std::uint64_t seed) {
  PAIRMR_REQUIRE(dim > 0 && num_clusters > 0, "invalid point parameters");
  Rng rng(seed);

  // Cluster centers: random corners of a scaled hypercube, far enough
  // apart (spread) that intra-cluster distances stay well below
  // inter-cluster ones.
  std::vector<std::vector<double>> centers(num_clusters,
                                           std::vector<double>(dim, 0.0));
  for (auto& c : centers) {
    for (auto& x : c) x = spread * (rng.next_double() - 0.5);
  }

  std::vector<std::vector<double>> points;
  points.reserve(v);
  for (std::uint64_t i = 0; i < v; ++i) {
    Rng item = rng.fork(i);
    const auto& center = centers[i % num_clusters];
    std::vector<double> p(dim);
    for (std::uint32_t d = 0; d < dim; ++d) {
      p[d] = center[d] + item.next_gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<std::string> vector_payloads(
    const std::vector<std::vector<double>>& points) {
  std::vector<std::string> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(encode_f64_vec(p));
  return out;
}

std::vector<std::vector<std::uint32_t>> token_documents(
    std::uint64_t v, std::uint32_t vocabulary, std::uint32_t tokens_per_doc,
    std::uint64_t seed) {
  PAIRMR_REQUIRE(vocabulary > 0 && tokens_per_doc > 0,
                 "invalid document parameters");
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> docs;
  docs.reserve(v);
  for (std::uint64_t i = 0; i < v; ++i) {
    Rng item = rng.fork(i);
    std::vector<std::uint32_t> tokens;
    tokens.reserve(tokens_per_doc);
    for (std::uint32_t t = 0; t < tokens_per_doc; ++t) {
      // Zipf-like skew: squaring a uniform deviate concentrates mass on
      // low token ids, so low ids act like frequent terms.
      const double u = item.next_double();
      const auto token =
          static_cast<std::uint32_t>(u * u * static_cast<double>(vocabulary));
      tokens.push_back(std::min(token, vocabulary - 1));
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    docs.push_back(std::move(tokens));
  }
  return docs;
}

std::vector<std::string> document_payloads(
    const std::vector<std::vector<std::uint32_t>>& docs) {
  std::vector<std::string> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) out.push_back(encode_token_set(doc));
  return out;
}

std::vector<std::vector<double>> expression_profiles(std::uint64_t v,
                                                     std::uint32_t samples,
                                                     std::uint32_t group_size,
                                                     std::uint64_t seed) {
  PAIRMR_REQUIRE(samples > 0 && group_size > 0,
                 "invalid expression parameters");
  Rng rng(seed);
  std::vector<std::vector<double>> profiles;
  profiles.reserve(v);

  // Genes in the same group share a latent regulator signal plus
  // per-gene noise; cross-group profiles are independent.
  const std::uint64_t num_groups = (v + group_size - 1) / group_size;
  std::vector<std::vector<double>> regulators(num_groups,
                                              std::vector<double>(samples));
  for (std::uint64_t g = 0; g < num_groups; ++g) {
    Rng r = rng.fork(g);
    for (std::uint32_t s = 0; s < samples; ++s) {
      regulators[g][s] = r.next_gaussian();
    }
  }

  for (std::uint64_t i = 0; i < v; ++i) {
    Rng item = rng.fork(num_groups + i);
    const auto& reg = regulators[i / group_size];
    std::vector<double> profile(samples);
    for (std::uint32_t s = 0; s < samples; ++s) {
      profile[s] = reg[s] + 0.35 * item.next_gaussian();
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace pairmr::workloads
