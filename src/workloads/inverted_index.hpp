// Inverted-index pairwise document similarity — the Elsayed/Lin/Oard
// (ACL'08) baseline the paper contrasts against in §2.
//
// Instead of partitioning the full Cartesian product, this builds a
// term → documents index (Job 1 reduce sees each term's posting list and
// emits one contribution per co-occurring pair), then sums contributions
// per pair (Job 2) into Jaccard similarities. Pairs sharing no term are
// never touched — the "reduced complexity" regime. The flip side, which
// the paper's schemes avoid: with frequently shared terms the posting
// lists approach the whole corpus and the emitted pair volume approaches
// v²·terms, far beyond the Cartesian product itself. bench_baseline
// measures both regimes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "pairwise/element.hpp"

namespace pairmr::workloads {

struct InvertedIndexStats {
  mr::JobResult index_job;      // term -> pair contributions
  mr::JobResult aggregate_job;  // pair -> similarity
  // Pair contributions emitted across all posting lists (the method's
  // work measure, comparable to the quadratic pipeline's evaluations).
  std::uint64_t pair_contributions = 0;
  std::uint64_t shuffle_remote_bytes = 0;
  std::string output_dir;
};

// Compute Jaccard similarity for every document pair sharing at least
// one token, keeping pairs with similarity >= threshold. Input records:
// (big-endian u64 doc id, token-set payload as in document_payloads).
InvertedIndexStats run_doc_similarity_inverted(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    double threshold, const std::string& work_dir = "/inverted");

// Decode the baseline's output into (a < b) -> similarity.
std::map<std::pair<ElementId, ElementId>, double> read_similarities(
    const mr::Cluster& cluster, const std::string& prefix);

}  // namespace pairmr::workloads
