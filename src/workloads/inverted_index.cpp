#include "workloads/inverted_index.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "mr/context.hpp"
#include "workloads/kernels.hpp"

namespace pairmr::workloads {

namespace {

using mr::Bytes;

// Pair key: both ids big-endian so byte order groups pairs correctly.
std::string encode_pair_key(ElementId a, ElementId b) {
  BufWriter w;
  w.put_u64_ordered(a);
  w.put_u64_ordered(b);
  return std::move(w).str();
}

std::pair<ElementId, ElementId> decode_pair_key(std::string_view bytes) {
  BufReader r(bytes);
  const ElementId a = r.get_u64_ordered();
  const ElementId b = r.get_u64_ordered();
  return {a, b};
}

// Job 1 map: (doc id, token set) -> (token, (doc id, doc size)).
class IndexMapper final : public mr::Mapper {
 public:
  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    const ElementId doc = decode_u64_key(key);
    const auto tokens = decode_token_set(value);
    for (const std::uint32_t token : tokens) {
      BufWriter term_key;
      term_key.put_u32(token);
      BufWriter posting;
      posting.put_u64(doc);
      posting.put_u32(static_cast<std::uint32_t>(tokens.size()));
      ctx.emit(std::move(term_key).str(), std::move(posting).str());
    }
  }
};

// Job 1 reduce: per term, one contribution per co-occurring doc pair.
class PostingsReducer final : public mr::Reducer {
 public:
  void reduce(const Bytes& /*term*/, const std::vector<Bytes>& postings,
              mr::ReduceContext& ctx) override {
    struct Posting {
      ElementId doc;
      std::uint32_t size;
    };
    std::vector<Posting> docs;
    docs.reserve(postings.size());
    for (const auto& p : postings) {
      BufReader r(p);
      Posting posting;
      posting.doc = r.get_u64();
      posting.size = r.get_u32();
      docs.push_back(posting);
    }
    // The quadratic step — but only over this term's posting list.
    std::uint64_t contributions = 0;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      for (std::size_t j = i + 1; j < docs.size(); ++j) {
        const auto [lo, hi] = docs[i].doc < docs[j].doc
                                  ? std::pair{docs[i], docs[j]}
                                  : std::pair{docs[j], docs[i]};
        BufWriter value;
        value.put_u32(lo.size);
        value.put_u32(hi.size);
        ctx.emit(encode_pair_key(lo.doc, hi.doc), std::move(value).str());
        ++contributions;
      }
    }
    ctx.counters().add("inverted.pair.contributions", contributions);
  }
};

// Job 2 reduce: |A ∩ B| = contribution count; Jaccard from sizes.
class SimilarityReducer final : public mr::Reducer {
 public:
  explicit SimilarityReducer(double threshold) : threshold_(threshold) {}

  void reduce(const Bytes& pair_key, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    BufReader first(values.front());
    const std::uint32_t size_a = first.get_u32();
    const std::uint32_t size_b = first.get_u32();
    const auto intersection = static_cast<double>(values.size());
    const double unions =
        static_cast<double>(size_a) + static_cast<double>(size_b) -
        intersection;
    const double similarity = unions == 0.0 ? 1.0 : intersection / unions;
    if (similarity >= threshold_) {
      ctx.emit(pair_key, encode_result(similarity));
    }
  }

 private:
  double threshold_;
};

}  // namespace

InvertedIndexStats run_doc_similarity_inverted(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    double threshold, const std::string& work_dir) {
  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();
  const std::string index_dir = work_dir + "/contributions";
  const std::string output_dir = work_dir + "/similarities";
  dfs.remove_prefix(index_dir);
  dfs.remove_prefix(output_dir);

  InvertedIndexStats stats;

  mr::JobSpec job1;
  job1.name = "inverted-index";
  job1.input_paths = input_paths;
  job1.output_dir = index_dir;
  job1.mapper_factory = [] { return std::make_unique<IndexMapper>(); };
  job1.reducer_factory = [] { return std::make_unique<PostingsReducer>(); };
  stats.index_job = engine.run(job1);

  mr::JobSpec job2;
  job2.name = "inverted-similarity";
  job2.input_paths = stats.index_job.output_paths;
  job2.output_dir = output_dir;
  job2.mapper_factory = [] { return std::make_unique<mr::IdentityMapper>(); };
  job2.reducer_factory = [threshold] {
    return std::make_unique<SimilarityReducer>(threshold);
  };
  stats.aggregate_job = engine.run(job2);

  stats.pair_contributions =
      stats.index_job.counter("inverted.pair.contributions");
  stats.shuffle_remote_bytes =
      stats.index_job.counter(mr::counter::kShuffleBytesRemote) +
      stats.aggregate_job.counter(mr::counter::kShuffleBytesRemote);
  stats.output_dir = output_dir;
  dfs.remove_prefix(index_dir);
  return stats;
}

std::map<std::pair<ElementId, ElementId>, double> read_similarities(
    const mr::Cluster& cluster, const std::string& prefix) {
  std::map<std::pair<ElementId, ElementId>, double> out;
  for (const auto& rec : cluster.gather_records(prefix)) {
    out.emplace(decode_pair_key(rec.key), decode_result(rec.value));
  }
  return out;
}

}  // namespace pairmr::workloads
