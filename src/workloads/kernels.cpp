#include "workloads/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "pairwise/tokenset.hpp"

namespace pairmr::workloads {

std::string encode_result(double value) {
  BufWriter w;
  w.put_f64(value);
  return std::move(w).str();
}

double decode_result(std::string_view bytes) {
  BufReader r(bytes);
  return r.get_f64();
}

double euclidean_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  PAIRMR_REQUIRE(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b) {
  PAIRMR_REQUIRE(a.size() == b.size(), "dimension mismatch");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom == 0.0 ? 0.0 : dot / denom;
}

double inner_product(const std::vector<double>& a,
                     const std::vector<double>& b) {
  PAIRMR_REQUIRE(a.size() == b.size(), "dimension mismatch");
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot;
}

double jaccard_similarity(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  // Single source of truth in the pairwise layer (pairwise/tokenset.hpp)
  // so the similarity-join runner computes bit-identical similarities.
  return pairmr::jaccard_similarity(a, b);
}

double mutual_information(const std::vector<double>& a,
                          const std::vector<double>& b, std::uint32_t bins) {
  PAIRMR_REQUIRE(a.size() == b.size() && !a.empty(), "sample mismatch");
  PAIRMR_REQUIRE(bins >= 2, "need at least two bins");
  const std::size_t n = a.size();

  struct Range {
    double lo, span;
  };
  const auto range_of = [](const std::vector<double>& xs) {
    const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    return Range{*lo, *hi - *lo};
  };
  const Range ra = range_of(a);
  const Range rb = range_of(b);
  const auto bin_of = [bins](const Range& r, double x) {
    if (r.span == 0.0) return std::uint32_t{0};
    auto bin = static_cast<std::uint32_t>((x - r.lo) / r.span *
                                          static_cast<double>(bins));
    return std::min(bin, bins - 1);
  };

  std::vector<std::uint32_t> joint(static_cast<std::size_t>(bins) * bins, 0);
  std::vector<std::uint32_t> ma(bins, 0), mb(bins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t ba = bin_of(ra, a[i]);
    const std::uint32_t bb = bin_of(rb, b[i]);
    ++joint[static_cast<std::size_t>(ba) * bins + bb];
    ++ma[ba];
    ++mb[bb];
  }

  double mi = 0.0;
  const double dn = static_cast<double>(n);
  for (std::uint32_t x = 0; x < bins; ++x) {
    for (std::uint32_t y = 0; y < bins; ++y) {
      const std::uint32_t c = joint[static_cast<std::size_t>(x) * bins + y];
      if (c == 0) continue;
      const double pxy = static_cast<double>(c) / dn;
      const double px = static_cast<double>(ma[x]) / dn;
      const double py = static_cast<double>(mb[y]) / dn;
      mi += pxy * std::log(pxy / (px * py));
    }
  }
  return mi;
}

std::uint64_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter side
  std::vector<std::uint64_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::uint64_t diag = row[0];  // dp[i-1][j-1]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::uint64_t up = row[j];  // dp[i-1][j]
      const std::uint64_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({subst, up + 1, row[j - 1] + 1});
      diag = up;
    }
  }
  return row[b.size()];
}

std::vector<std::uint32_t> decode_token_set(std::string_view payload) {
  return pairmr::decode_token_set(payload);
}

namespace {

// Adapt a vector<double> × vector<double> -> double function.
template <typename Fn>
ComputeFn numeric_kernel(Fn fn) {
  return [fn](const Element& a, const Element& b) {
    return encode_result(
        fn(decode_f64_vec(a.payload), decode_f64_vec(b.payload)));
  };
}

// Decode-once adapter for the same shape of function: the handle is the
// decoded f64 vector, so compare() is pure arithmetic.
template <typename Fn>
PreparedKernel numeric_prepared(Fn fn) {
  PreparedKernel k;
  k.prepare = [](const Element& e) -> PreparedKernel::Handle {
    return std::make_shared<const std::vector<double>>(
        decode_f64_vec(e.payload));
  };
  k.compare = [fn](const void* a, const void* b) {
    return encode_result(fn(*static_cast<const std::vector<double>*>(a),
                            *static_cast<const std::vector<double>*>(b)));
  };
  return k;
}

}  // namespace

ComputeFn euclidean_kernel() {
  return numeric_kernel(
      [](const auto& a, const auto& b) { return euclidean_distance(a, b); });
}

ComputeFn cosine_kernel() {
  return numeric_kernel(
      [](const auto& a, const auto& b) { return cosine_similarity(a, b); });
}

ComputeFn inner_product_kernel() {
  return numeric_kernel(
      [](const auto& a, const auto& b) { return inner_product(a, b); });
}

ComputeFn jaccard_kernel() {
  return [](const Element& a, const Element& b) {
    return encode_result(jaccard_similarity(decode_token_set(a.payload),
                                            decode_token_set(b.payload)));
  };
}

ComputeFn mutual_information_kernel(std::uint32_t bins) {
  return [bins](const Element& a, const Element& b) {
    return encode_result(mutual_information(decode_f64_vec(a.payload),
                                            decode_f64_vec(b.payload), bins));
  };
}

ComputeFn edit_distance_kernel() {
  return [](const Element& a, const Element& b) {
    return encode_result(
        static_cast<double>(edit_distance(a.payload, b.payload)));
  };
}

ComputeFn expensive_blob_kernel(std::uint32_t rounds) {
  return [rounds](const Element& a, const Element& b) {
    // Mix the payload bytes `rounds` times — stands in for an arbitrary
    // CPU-heavy comp() (string kernels, alignment scores, ...).
    std::uint64_t acc = 0x9e3779b97f4a7c15ull;
    for (std::uint32_t r = 0; r < rounds; ++r) {
      const std::string& s = (r % 2 == 0) ? a.payload : b.payload;
      for (const char c : s) {
        acc = (acc ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
      }
    }
    return encode_result(static_cast<double>(acc >> 11));
  };
}

PreparedKernel euclidean_prepared() {
  return numeric_prepared(
      [](const auto& a, const auto& b) { return euclidean_distance(a, b); });
}

PreparedKernel cosine_prepared() {
  return numeric_prepared(
      [](const auto& a, const auto& b) { return cosine_similarity(a, b); });
}

PreparedKernel inner_product_prepared() {
  return numeric_prepared(
      [](const auto& a, const auto& b) { return inner_product(a, b); });
}

PreparedKernel jaccard_prepared() {
  PreparedKernel k;
  k.prepare = [](const Element& e) -> PreparedKernel::Handle {
    return std::make_shared<const std::vector<std::uint32_t>>(
        decode_token_set(e.payload));
  };
  k.compare = [](const void* a, const void* b) {
    return encode_result(jaccard_similarity(
        *static_cast<const std::vector<std::uint32_t>*>(a),
        *static_cast<const std::vector<std::uint32_t>*>(b)));
  };
  return k;
}

PreparedKernel mutual_information_prepared(std::uint32_t bins) {
  return numeric_prepared([bins](const auto& a, const auto& b) {
    return mutual_information(a, b, bins);
  });
}

KeepFn keep_below(double threshold) {
  return [threshold](const Element&, const Element&, std::string_view r) {
    return decode_result(r) <= threshold;
  };
}

KeepFn keep_above(double threshold) {
  return [threshold](const Element&, const Element&, std::string_view r) {
    return decode_result(r) >= threshold;
  };
}

}  // namespace pairmr::workloads
