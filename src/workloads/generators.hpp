// Synthetic dataset generators.
//
// The paper's evaluation varies only element count v and element size s;
// these generators produce deterministic datasets with exactly those
// knobs, plus structured numeric data for the domain examples (clustered
// points for DBSCAN, expression profiles for gene networks, token sets
// for document similarity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pairmr::workloads {

// v opaque payloads of exactly `bytes` pseudo-random bytes each.
std::vector<std::string> blob_payloads(std::uint64_t v, std::uint64_t bytes,
                                       std::uint64_t seed);

// v points in `dim` dimensions drawn from `num_clusters` Gaussian blobs
// (unit variance) whose centers sit on a grid scaled by `spread`.
std::vector<std::vector<double>> clustered_points(std::uint64_t v,
                                                  std::uint32_t dim,
                                                  std::uint32_t num_clusters,
                                                  double spread,
                                                  std::uint64_t seed);

// Serialize numeric vectors into payloads (encode_f64_vec framing).
std::vector<std::string> vector_payloads(
    const std::vector<std::vector<double>>& points);

// v documents as sorted, deduplicated token-id sets. Token frequencies
// are Zipf-like so some tokens are shared by many documents, giving a
// realistic similarity distribution. tokens_per_doc is the pre-dedup draw
// count.
std::vector<std::vector<std::uint32_t>> token_documents(
    std::uint64_t v, std::uint32_t vocabulary, std::uint32_t tokens_per_doc,
    std::uint64_t seed);

std::vector<std::string> document_payloads(
    const std::vector<std::vector<std::uint32_t>>& docs);

// v gene-expression profiles over `samples` conditions. Genes come in
// correlated groups of `group_size` (co-regulated), so mutual information
// between same-group genes is high — the structure a network
// reconstruction should recover.
std::vector<std::vector<double>> expression_profiles(std::uint64_t v,
                                                     std::uint32_t samples,
                                                     std::uint32_t group_size,
                                                     std::uint64_t seed);

}  // namespace pairmr::workloads
