#include "pairwise/quorum_scheme.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "design/difference_set.hpp"

namespace pairmr {

namespace {
constexpr std::uint64_t kUnset = std::numeric_limits<std::uint64_t>::max();
}  // namespace

QuorumScheme::QuorumScheme(std::uint64_t v)
    : QuorumScheme(v, v == 0 ? std::vector<std::uint64_t>{}
                             : design::difference_cover(v)) {}

QuorumScheme::QuorumScheme(std::uint64_t v, std::vector<std::uint64_t> cover)
    : v_(v), cover_(std::move(cover)) {
  std::sort(cover_.begin(), cover_.end());
  cover_.erase(std::unique(cover_.begin(), cover_.end()), cover_.end());
  if (v_ == 0) {
    PAIRMR_REQUIRE(cover_.empty(), "cover of the empty set must be empty");
    return;
  }
  PAIRMR_REQUIRE(design::is_difference_cover(cover_, v_),
                 "quorum scheme needs a difference cover of Z_v");

  // Canonical owner offset per residue: the first (c2 ascending, then c1
  // ascending) ordered cover pair with c1 − c2 ≡ d. Deterministic, and
  // existence for every d is exactly the cover property.
  canon_.assign(v_, kUnset);
  std::uint64_t unset = v_;
  for (const std::uint64_t c2 : cover_) {
    for (const std::uint64_t c1 : cover_) {
      const std::uint64_t d = (c1 + v_ - c2) % v_;
      if (canon_[d] == kUnset) {
        canon_[d] = c2;
        if (--unset == 0) break;
      }
    }
    if (unset == 0) break;
  }
  PAIRMR_CHECK(unset == 0, "difference cover left a residue unrepresented");

  // Exact owned-pair counts: difference d contributes one pair per
  // lo in [0, v−d), owned by the cyclic task interval starting at
  // (0 − canon_[d]) mod v of length v−d. Accumulate with a wrapped
  // difference array, O(v) total.
  std::vector<std::int64_t> delta(v_ + 1, 0);
  for (std::uint64_t d = 1; d < v_; ++d) {
    const std::uint64_t start = (v_ - canon_[d]) % v_;
    const std::uint64_t len = v_ - d;
    if (start + len <= v_) {
      ++delta[start];
      --delta[start + len];
    } else {
      ++delta[start];
      --delta[v_];
      ++delta[0];
      --delta[start + len - v_];
    }
  }
  owned_.assign(v_, 0);
  std::int64_t running = 0;
  std::uint64_t total = 0;
  max_owned_ = 0;
  min_owned_ = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t t = 0; t < v_; ++t) {
    running += delta[t];
    owned_[t] = static_cast<std::uint64_t>(running);
    total += owned_[t];
    max_owned_ = std::max(max_owned_, owned_[t]);
    min_owned_ = std::min(min_owned_, owned_[t]);
  }
  PAIRMR_CHECK(total == pair_count(v_),
               "quorum ownership does not tile C(v,2) pairs");
}

std::vector<TaskId> QuorumScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < v_, "element id out of range");
  // id in Q_t  <=>  (id − t) mod v in D  <=>  t = (id − d) mod v.
  std::vector<TaskId> out;
  out.reserve(cover_.size());
  for (const std::uint64_t d : cover_) {
    out.push_back((id + v_ - d) % v_);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementPair> QuorumScheme::pairs_in(TaskId task) const {
  PAIRMR_REQUIRE(task < v_, "task id out of range");
  // Task t owns, per difference d, the single pair with
  // lo = (t + canon_[d]) mod v when hi = lo + d stays below v.
  std::vector<ElementPair> out;
  out.reserve(owned_[task]);
  for (std::uint64_t d = 1; d < v_; ++d) {
    const std::uint64_t lo = (task + canon_[d]) % v_;
    if (lo + d < v_) out.push_back(ElementPair{lo, lo + d});
  }
  PAIRMR_CHECK(out.size() == owned_[task],
               "enumerated quorum pairs disagree with the owned count");
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementId> QuorumScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < v_, "task id out of range");
  std::vector<ElementId> out;
  out.reserve(cover_.size());
  for (const std::uint64_t d : cover_) {
    out.push_back((d + task) % v_);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t QuorumScheme::total_pairs() const { return pair_count(v_); }

SchemeMetrics QuorumScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = v_;
  const double k = static_cast<double>(cover_.size());
  m.communication_elements = 2.0 * static_cast<double>(v_) * k;
  m.replication_factor = k;
  m.working_set_elements = k;
  m.evaluations_per_task = static_cast<double>(max_owned_);
  return m;
}

}  // namespace pairmr
