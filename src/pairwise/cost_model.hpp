// Analytic cost model: the paper's Table 1 formulas and the feasibility
// limits behind Figures 8 and 9.
//
// Two environment limits drive feasibility (paper §6):
//   maxws — main memory available to one task's working set;
//   maxis — storage available for materialized intermediate data.
// All sizes are bytes; `element_bytes` is the paper's per-element size s.
#pragma once

#include <cstdint>

#include "pairwise/scheme.hpp"

namespace pairmr {

struct Limits {
  std::uint64_t max_working_set_bytes = 0;    // maxws
  std::uint64_t max_intermediate_bytes = 0;   // maxis
};

// --- Table 1 rows, analytic (no scheme instance needed) -----------------

SchemeMetrics broadcast_metrics(std::uint64_t v, std::uint64_t tasks);
SchemeMetrics block_metrics(std::uint64_t v, std::uint64_t h);
// Uses the √v approximation exactly as Table 1 does; `n` caps the
// communication at 2vn ("sending to all nodes").
SchemeMetrics design_metrics_approx(std::uint64_t v, std::uint64_t n);
// Cyclic quorums over a generic ~2√v difference cover (√v when v is an
// exact plane order, but the planner budgets for the generic bound);
// communication capped at 2vn like the design row.
SchemeMetrics quorum_metrics_approx(std::uint64_t v, std::uint64_t n);

// Data-dependent evaluations (similarity join, DESIGN.md §14): scale the
// evaluations-per-task entry by the expected fraction of C(v,2) that
// survives candidate generation, `fraction` ∈ [0, 1]. Communication,
// replication, and working-set entries are unchanged — candidate pruning
// shrinks the kernel work, not the element shipping.
SchemeMetrics with_candidate_fraction(SchemeMetrics metrics,
                                      double fraction);

// --- Byte-space requirement functions ------------------------------------

// Peak working-set bytes of one task.
std::uint64_t broadcast_working_set_bytes(std::uint64_t v,
                                          std::uint64_t element_bytes);
std::uint64_t block_working_set_bytes(std::uint64_t v, std::uint64_t h,
                                      std::uint64_t element_bytes);
std::uint64_t design_working_set_bytes(std::uint64_t v,
                                       std::uint64_t element_bytes);
std::uint64_t quorum_working_set_bytes(std::uint64_t v,
                                       std::uint64_t element_bytes);

// Materialized intermediate bytes (replicated copies of the dataset).
std::uint64_t broadcast_intermediate_bytes(std::uint64_t v, std::uint64_t p,
                                           std::uint64_t element_bytes);
std::uint64_t block_intermediate_bytes(std::uint64_t v, std::uint64_t h,
                                       std::uint64_t element_bytes);
std::uint64_t design_intermediate_bytes(std::uint64_t v,
                                        std::uint64_t element_bytes);
std::uint64_t quorum_intermediate_bytes(std::uint64_t v,
                                        std::uint64_t element_bytes);

// --- Figure 8: per-scheme dataset-size ceilings --------------------------

// Fig 8a: largest v the broadcast scheme can process before one working
// set (the whole dataset) exceeds maxws: v <= maxws / s.
std::uint64_t broadcast_max_v(std::uint64_t element_bytes,
                              std::uint64_t maxws);

// Fig 8b: largest v the design scheme can process before intermediate
// storage (≈ v·√v·s) exceeds maxis: v <= (maxis/s)^(2/3).
std::uint64_t design_max_v_by_storage(std::uint64_t element_bytes,
                                      std::uint64_t maxis);

// Design is also memory-bound: √v·s <= maxws  =>  v <= (maxws/s)².
std::uint64_t design_max_v_by_memory(std::uint64_t element_bytes,
                                     std::uint64_t maxws);

// --- Figure 9a: valid blocking-factor range -------------------------------

// For dataset size vs = v·s: 2·vs/h <= maxws and vs·h <= maxis give
//   2·vs/maxws <= h <= maxis/vs.
struct HRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool valid() const { return lo >= 1 && lo <= hi; }
};
HRange block_h_range(std::uint64_t dataset_bytes, const Limits& limits);

// Necessary condition for any valid h: vs <= sqrt(maxws·maxis/2).
std::uint64_t block_max_dataset_bytes(const Limits& limits);

// --- Figure 9b: max v per scheme under both limits -----------------------

std::uint64_t broadcast_max_v(std::uint64_t element_bytes,
                              const Limits& limits);
std::uint64_t block_max_v(std::uint64_t element_bytes, const Limits& limits);
std::uint64_t design_max_v(std::uint64_t element_bytes, const Limits& limits);

}  // namespace pairmr
