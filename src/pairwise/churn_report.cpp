#include "pairwise/churn_report.hpp"

#include <algorithm>
#include <sstream>

namespace pairmr {

std::string churn_to_json(const std::vector<ChurnPoint>& points) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"churn\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ChurnPoint& p = points[i];
    os << "    {\"base_v\": " << p.base_v << ", \"delta_k\": " << p.delta_k
       << ", \"batch_pairs\": " << p.batch_pairs
       << ", \"delta_pairs\": " << p.delta_pairs
       << ", \"reused_pairs\": " << p.reused_pairs
       << ", \"batch_seconds\": " << p.batch_seconds
       << ", \"update_seconds\": " << p.update_seconds
       << ", \"speedup\": " << p.speedup
       << ", \"analytic_factor\": " << p.analytic_factor
       << ", \"gap_gate\": " << p.gap_gate
       << ", \"identical\": " << (p.identical ? "true" : "false")
       << ", \"passed\": " << (p.passed ? "true" : "false") << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passed\": " << (churn_all_ok(points) ? "true" : "false")
     << "\n}\n";
  return os.str();
}

bool churn_all_ok(const std::vector<ChurnPoint>& points) {
  return !points.empty() &&
         std::all_of(points.begin(), points.end(),
                     [](const ChurnPoint& p) { return p.passed; });
}

}  // namespace pairmr
