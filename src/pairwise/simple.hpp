// One-call convenience API: evaluate a function on all pairs of an
// in-memory dataset using an ephemeral simulated cluster. This is the
// five-line quickstart path; production users drive PairwiseRunner with
// their own Cluster and scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "mr/cluster.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/planner.hpp"

namespace pairmr {

struct SimpleOptions {
  mr::ClusterConfig cluster;
  // Scheme choice; the planner's block factor default (√v-ish) is used
  // when kBlock is selected and block_h == 0.
  SchemeKind scheme = SchemeKind::kBlock;
  std::uint64_t block_h = 0;
  std::uint64_t broadcast_tasks = 0;  // 0 = one per node
  PlaneConstruction plane = PlaneConstruction::kTheorem2Prime;
};

// Runs the full two-job pipeline and returns the aggregated elements,
// sorted by id. Element i's payload is payloads[i].
std::vector<Element> compute_all_pairs(
    const std::vector<std::string>& payloads, const PairwiseJob& job,
    const SimpleOptions& options = {});

}  // namespace pairmr
