#include "pairwise/session.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "common/serde.hpp"
#include "pairwise/aggregate.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"

namespace pairmr {

PairwiseSession::PairwiseSession(mr::Cluster& cluster, PairwiseJob job,
                                 SessionOptions options)
    : cluster_(cluster),
      job_(std::move(job)),
      options_(std::move(options)),
      runner_(cluster),
      backend_(cluster, options_.run.backend) {
  PAIRMR_REQUIRE(
      job_.finalize == nullptr,
      "PairwiseSession needs a job without a finalize hook: incremental "
      "merging re-aggregates an element once per epoch, so finalize "
      "would run repeatedly instead of exactly once — post-process "
      "downstream of query()/top_k() instead");
  PAIRMR_REQUIRE(
      options_.run.distribute_partitioner == nullptr,
      "SessionOptions::run.distribute_partitioner is not supported: "
      "update() synthesizes its own delta scheme, so the task-id space "
      "a custom partitioner would route over is unknown to the caller");
  PAIRMR_REQUIRE(!options_.work_dir.empty(),
                 "SessionOptions::work_dir must name a DFS directory");
}

std::shared_ptr<DistributionScheme> PairwiseSession::batch_scheme(
    SchemeKind kind, std::uint64_t v, std::uint64_t num_nodes,
    std::uint64_t block_h, PlaneConstruction plane) {
  switch (kind) {
    case SchemeKind::kBroadcast:
      return std::make_shared<BroadcastScheme>(
          v, std::max<std::uint64_t>(1, num_nodes));
    case SchemeKind::kBlock: {
      // Default h: enough tasks for every node, minimal replication
      // beyond that (the same rule simple.cpp applies).
      std::uint64_t h = block_h;
      if (h == 0) {
        h = 1;
        while (triangular(h) < num_nodes) ++h;
      }
      return std::make_shared<BlockScheme>(v, std::min<std::uint64_t>(h, v));
    }
    case SchemeKind::kQuorum:
      return std::make_shared<QuorumScheme>(v);
    case SchemeKind::kDesign:
      return std::make_shared<DesignScheme>(v, plane);
  }
  PAIRMR_CHECK(false, "unknown scheme kind");
  return nullptr;
}

PairwiseOptions PairwiseSession::epoch_options(std::uint64_t epoch) const {
  PairwiseOptions o = options_.run;
  o.work_dir = options_.work_dir + "/epoch-" + std::to_string(epoch);
  o.run_aggregation = true;
  o.cleanup_intermediate = true;
  o.distribute_partitioner = nullptr;
  return o;
}

RunReport PairwiseSession::submit(const std::vector<std::string>& payloads) {
  PAIRMR_REQUIRE(v_ == 0,
                 "PairwiseSession::submit() must run exactly once, before "
                 "any update(); to grow the set, call update()");
  PAIRMR_REQUIRE(payloads.size() >= 2, "need at least two elements");

  cluster_.dfs().remove_prefix(options_.work_dir);
  input_paths_ = write_dataset(cluster_, options_.work_dir + "/input/epoch-0",
                               payloads);

  RunSpec spec;
  spec.input_paths = input_paths_;
  spec.job = job_;
  spec.options = epoch_options(0);
  if (options_.batch_scheme == SchemeKind::kBroadcast) {
    spec.mode = RunMode::kBroadcast;
    spec.broadcast = BroadcastTarget{
        .v = payloads.size(),
        .num_tasks = options_.broadcast_tasks != 0 ? options_.broadcast_tasks
                                                   : cluster_.num_nodes()};
  } else {
    spec.mode = RunMode::kTwoJob;
    spec.scheme =
        batch_scheme(options_.batch_scheme, payloads.size(),
                     cluster_.num_nodes(), options_.block_h, options_.plane);
  }

  RunReport report = runner_.run(spec, backend_);
  v_ = payloads.size();
  state_dir_ = report.output_dir;
  state_paths_ = cluster_.dfs().list(state_dir_);
  evaluations_ += report.evaluations;
  return report;
}

RunReport PairwiseSession::update(
    const std::vector<std::string>& delta_payloads) {
  PAIRMR_REQUIRE(v_ > 0, "PairwiseSession::update() before submit()");
  PAIRMR_REQUIRE(!delta_payloads.empty(), "empty delta — nothing to add");

  const std::uint64_t k = delta_payloads.size();
  const std::uint64_t next_epoch = epoch_ + 1;
  const std::string epoch_dir =
      options_.work_dir + "/epoch-" + std::to_string(next_epoch);

  // New payloads append to the id space: ids [v, v+k).
  const std::vector<std::string> delta_paths = write_dataset(
      cluster_, options_.work_dir + "/input/epoch-" +
                    std::to_string(next_epoch),
      delta_payloads, v_);
  std::vector<std::string> union_paths = input_paths_;
  union_paths.insert(union_paths.end(), delta_paths.begin(),
                     delta_paths.end());

  // Phase 1: the delta plan — only the new pairs are evaluated. The
  // aggregation is ours (phase 2 merges into the persisted state), so
  // the run stops at the compare intermediates.
  RunSpec spec;
  spec.mode = RunMode::kDelta;
  spec.delta = DeltaTarget{.base_v = v_, .delta_v = k};
  spec.input_paths = union_paths;
  spec.job = job_;
  spec.options = epoch_options(next_epoch);
  spec.options.run_aggregation = false;
  RunReport report = runner_.run(spec, backend_);
  const std::string delta_intermediate = report.output_dir;
  PAIRMR_CHECK(report.pairs_reused == triangular(v_ - 1),
               "delta run reused a different pair count than the cache "
               "holds");

  // Phase 2: merge the delta intermediates into the persisted
  // aggregates — the exact Job 2 reduction a batch run executes, which
  // is what keeps the state byte-identical to a from-scratch run over
  // the union. The merge lands in a fresh directory; the state pointer
  // flips only after the job succeeded, so a failed update leaves the
  // session serving its pre-update state.
  mr::JobSpec merge;
  merge.name = "session-merge-" + std::to_string(next_epoch);
  merge.input_paths = state_paths_;
  merge.input_paths.insert(merge.input_paths.end(),
                           report.compute_jobs.back().output_paths.begin(),
                           report.compute_jobs.back().output_paths.end());
  merge.output_dir = epoch_dir + "/state";
  merge.mapper_factory = [] { return std::make_unique<mr::IdentityMapper>(); };
  merge.reducer_factory = [&fin = job_.finalize] {
    return std::make_unique<AggregateReducer>(fin);
  };
  if (options_.run.aggregation_combiner) {
    merge.combiner_factory = [&fin = job_.finalize] {
      return std::make_unique<AggregateReducer>(fin);
    };
  }
  merge.num_reduce_tasks = options_.run.num_reduce_tasks;
  merge.fault_plan = options_.run.fault_plan;
  merge.speculative_execution = options_.run.speculative_execution;
  merge.memory_budget = options_.run.memory_budget;
  merge.backend = options_.run.backend;
  merge.shuffle_plane = options_.run.shuffle_plane;

  mr::Engine engine(cluster_);
  backend_.declare(merge);
  const mr::JobResult merged = backend_.run(engine, merge);

  // Which aggregates changed: every delta id, plus each base element
  // that gained at least one kept result. A base copy with an empty
  // result list merges to unchanged bytes, so its cache entry stays
  // valid — that is the invalidation rule.
  std::unordered_set<ElementId> touched;
  for (ElementId id = v_; id < v_ + k; ++id) touched.insert(id);
  for (const auto& rec : cluster_.gather_records(delta_intermediate)) {
    const Element copy = decode_element(rec.value);
    if (!copy.results.empty()) touched.insert(copy.id);
  }

  // Commit: flip the state pointer, then drop the superseded files.
  const std::string old_epoch_dir =
      options_.work_dir + "/epoch-" + std::to_string(epoch_);
  state_dir_ = merge.output_dir;
  state_paths_ = merged.output_paths;
  epoch_ = next_epoch;
  v_ += k;
  evaluations_ += report.evaluations;
  input_paths_ = std::move(union_paths);
  cluster_.dfs().remove_prefix(old_epoch_dir);
  cluster_.dfs().remove_prefix(delta_intermediate);

  for (const ElementId id : touched) {
    if (cache_.erase(id) > 0) ++stats_.invalidated;
  }

  report.merge_jobs.push_back(merged);
  report.aggregated = true;
  report.output_dir = state_dir_;
  return report;
}

const Element* PairwiseSession::find_cached(ElementId id) {
  const auto it = cache_.find(id);
  return it == cache_.end() ? nullptr : &it->second;
}

const Element& PairwiseSession::query(ElementId id) {
  PAIRMR_REQUIRE(v_ > 0, "PairwiseSession::query() before submit()");
  PAIRMR_REQUIRE(id < v_, "element id " + std::to_string(id) +
                              " out of range (v = " + std::to_string(v_) +
                              ")");
  if (const Element* hit = find_cached(id)) {
    ++stats_.hits;
    return *hit;
  }
  ++stats_.misses;
  const std::string key = encode_u64_key(id);
  const Element* found = nullptr;
  for (const auto& path : state_paths_) {
    for (const auto& rec : cluster_.dfs().open(path)->records) {
      if (rec.key != key) continue;
      found = &cache_.emplace(id, decode_element(rec.value)).first->second;
      break;
    }
    if (found != nullptr) break;
  }
  PAIRMR_CHECK(found != nullptr,
               "element " + std::to_string(id) +
                   " missing from persisted session state");
  return *found;
}

std::vector<ResultEntry> PairwiseSession::top_k(ElementId id,
                                                std::size_t k) {
  PAIRMR_REQUIRE(options_.score != nullptr,
                 "PairwiseSession::top_k needs SessionOptions::score to "
                 "rank results (e.g. workloads::decode_result for the "
                 "8-byte double kernels); query() works without one");
  const Element& e = query(id);
  std::vector<std::pair<double, const ResultEntry*>> scored;
  scored.reserve(e.results.size());
  for (const ResultEntry& r : e.results) {
    scored.emplace_back(options_.score(r.result), &r);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second->other < b.second->other;
            });
  if (scored.size() > k) scored.resize(k);
  std::vector<ResultEntry> out;
  out.reserve(scored.size());
  for (const auto& [score, entry] : scored) out.push_back(*entry);
  return out;
}

}  // namespace pairmr
