#include "pairwise/bipartite_scheme.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {

BipartiteBlockScheme::BipartiteBlockScheme(std::uint64_t va, std::uint64_t vb,
                                           std::uint64_t ha, std::uint64_t hb)
    : va_(va), vb_(vb), ha_(ha), hb_(hb) {
  PAIRMR_REQUIRE(va >= 1 && vb >= 1, "both datasets need elements");
  PAIRMR_REQUIRE(ha >= 1 && ha <= va, "grid factor ha must be in [1, va]");
  PAIRMR_REQUIRE(hb >= 1 && hb <= vb, "grid factor hb must be in [1, vb]");
  ea_ = ceil_div(va_, ha_);
  eb_ = ceil_div(vb_, hb_);
}

BipartiteBlockScheme::IdRange BipartiteBlockScheme::stripe_a(
    std::uint64_t coord) const {
  IdRange r;
  r.begin = std::min(coord * ea_, va_);
  r.end = std::min((coord + 1) * ea_, va_);
  return r;
}

BipartiteBlockScheme::IdRange BipartiteBlockScheme::stripe_b(
    std::uint64_t coord) const {
  IdRange r;
  r.begin = va_ + std::min(coord * eb_, vb_);
  r.end = va_ + std::min((coord + 1) * eb_, vb_);
  return r;
}

std::vector<TaskId> BipartiteBlockScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < va_ + vb_, "element id out of range");
  std::vector<TaskId> out;
  if (is_a(id)) {
    const std::uint64_t a = id / ea_;
    out.reserve(hb_);
    for (std::uint64_t b = 0; b < hb_; ++b) {
      if (!stripe_b(b).empty()) out.push_back(a * hb_ + b);
    }
  } else {
    const std::uint64_t b = (id - va_) / eb_;
    out.reserve(ha_);
    for (std::uint64_t a = 0; a < ha_; ++a) {
      if (!stripe_a(a).empty()) out.push_back(a * hb_ + b);
    }
  }
  return out;
}

std::vector<ElementPair> BipartiteBlockScheme::pairs_in(TaskId task) const {
  PAIRMR_REQUIRE(task < num_tasks(), "task id out of range");
  const IdRange ra = stripe_a(task / hb_);
  const IdRange rb = stripe_b(task % hb_);
  std::vector<ElementPair> out;
  out.reserve((ra.end - ra.begin) * (rb.end - rb.begin));
  // A ids precede B ids, so (a, b) is canonical.
  for (ElementId a = ra.begin; a < ra.end; ++a) {
    for (ElementId b = rb.begin; b < rb.end; ++b) {
      out.push_back(ElementPair{a, b});
    }
  }
  return out;
}

std::vector<ElementId> BipartiteBlockScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < num_tasks(), "task id out of range");
  const IdRange ra = stripe_a(task / hb_);
  const IdRange rb = stripe_b(task % hb_);
  std::vector<ElementId> out;
  for (ElementId a = ra.begin; a < ra.end; ++a) out.push_back(a);
  for (ElementId b = rb.begin; b < rb.end; ++b) out.push_back(b);
  return out;
}

SchemeMetrics BipartiteBlockScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = num_tasks();
  // Each A element is replicated into hb blocks, each B element into ha:
  // per-job shipping va·hb + vb·ha, doubled for the aggregation pass.
  m.communication_elements =
      2.0 * (static_cast<double>(va_) * static_cast<double>(hb_) +
             static_cast<double>(vb_) * static_cast<double>(ha_));
  m.replication_factor =
      (static_cast<double>(va_) * static_cast<double>(hb_) +
       static_cast<double>(vb_) * static_cast<double>(ha_)) /
      static_cast<double>(va_ + vb_);
  m.working_set_elements = static_cast<double>(ea_ + eb_);
  m.evaluations_per_task =
      static_cast<double>(ea_) * static_cast<double>(eb_);
  return m;
}

}  // namespace pairmr
