// Candidate-pair generation for the thresholded similarity join
// (RunMode::kSimilarityJoin, DESIGN.md §14).
//
// The exhaustive pipeline evaluates all C(v,2) pairs and lets a KeepFn
// drop the ones below threshold. A similarity join instead runs a
// candidate phase first — MR jobs that upper-bound which pairs CAN reach
// the threshold — and restricts the pairwise phase to those candidates by
// wrapping the distribution scheme in a CandidateScheme. Element SHIPPING
// is untouched (subsets_of is delegated), only the per-task pair relation
// shrinks, so the surviving results are byte-identical to the exhaustive
// run's by construction; the differential oracle in
// tests/pairwise/similarity_join_equivalence_test.cpp certifies it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mr/backend/session.hpp"
#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

// Sorted, deduplicated set of unordered element pairs with O(log n)
// membership — the contract between the candidate phase and the pairwise
// phase.
class CandidateSet {
 public:
  CandidateSet() = default;
  // Sorts and deduplicates; every pair must satisfy lo < hi.
  explicit CandidateSet(std::vector<ElementPair> pairs);

  bool contains(const ElementPair& pair) const;
  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<ElementPair>& pairs() const { return pairs_; }

 private:
  std::vector<ElementPair> pairs_;
};

// Restrict any scheme's pair relations to a candidate set. Pairs keep
// their base task owner and relative enumeration order; membership
// (subsets_of / working_set) is delegated unchanged, so distribution
// traffic and reduce groups are identical to the base scheme's and only
// the kernel-evaluation count becomes data-dependent. metrics() reports
// evaluations_per_task scaled by |candidates| / C(v,2)
// (cost_model::with_candidate_fraction).
class CandidateScheme final : public DistributionScheme {
 public:
  // `base` must outlive this wrapper. Every candidate pair must fall
  // inside base.num_elements().
  CandidateScheme(const DistributionScheme& base, CandidateSet candidates);

  std::string name() const override { return base_.name() + "+candidates"; }
  std::uint64_t num_elements() const override {
    return base_.num_elements();
  }
  std::uint64_t num_tasks() const override { return base_.num_tasks(); }
  std::vector<TaskId> subsets_of(ElementId id) const override {
    return base_.subsets_of(id);
  }
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  void for_each_pair(
      TaskId task,
      const std::function<void(ElementPair)>& fn) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override { return candidates_.size(); }
  std::vector<ElementId> working_set(TaskId task) const override {
    return base_.working_set(task);
  }

  const CandidateSet& candidates() const { return candidates_; }

 private:
  const DistributionScheme& base_;
  CandidateSet candidates_;
};

// Result of the candidate-generation MR phase.
struct CandidatePhase {
  // threshold <= 0: every pair trivially survives (J >= 0 always), so no
  // candidate jobs ran and `candidates` is empty — run the base scheme
  // unfiltered. A prefix filter would be WRONG here: disjoint sets share
  // no token yet survive J = 0 >= threshold.
  bool exhaustive = false;
  CandidateSet candidates;
  std::vector<mr::JobResult> jobs;  // executed candidate jobs, in order
};

// Run the candidate-generation jobs for `options.similarity_join` over
// the dataset in `input_paths` (records: big-endian u64 id, token-set
// payload; ids dense 0..v-1).
//
// CandidateFilter::kPrefix (exact, DESIGN.md §14):
//   1. "simjoin-tokenfreq"  — global token frequencies; the coordinator
//      derives the rare-first total order.
//   2. "simjoin-candidates" — each document emits (token, id, |set|) for
//      its prefix tokens (prefix_length under the rare-first order; empty
//      sets emit one sentinel posting); reducers pair up each posting
//      list, length-filtered.
//   3. "simjoin-dedup"      — one record per distinct candidate pair.
// CandidateFilter::kLshBanding replaces 1–2 with one "simjoin-lsh-bands"
// job bucketing minhash band signatures.
//
// Every job inherits the run's engine options (faults, speculation,
// memory budget, backend) and its scratch lives under
// <work_dir>/simjoin/, removed afterwards when cleanup_intermediate.
//
// Jobs run through `session` so a persistent fork pool is shared with the
// pairwise phase. The prefix filter needs two pool epochs by nature: the
// candidate mapper is built from the token-frequency job's OUTPUT, so the
// cand/dedup specs cannot exist when the freq job forks its pool. LSH
// buckets need no global pass and fit one epoch.
CandidatePhase generate_candidates(mr::Cluster& cluster,
                                   mr::backend::BackendSession& session,
                                   const std::vector<std::string>& input_paths,
                                   std::uint64_t v,
                                   const PairwiseOptions& options);

// The PairwiseJob a similarity join executes: the exact kernel for
// `options.kernel` (jaccard over token sets, decode-once prepared
// variant included) with a keep-filter at `options.threshold`. Result
// bytes are identical to workloads::jaccard_kernel + keep_above — the
// candidate phase never changes what a surviving pair's result looks
// like. `finalize` is the caller's aggregation hook (may be null).
PairwiseJob similarity_join_job(const SimilarityJoinOptions& options,
                                FinalizeFn finalize);

}  // namespace pairmr
