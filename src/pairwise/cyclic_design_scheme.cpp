#include "pairwise/cyclic_design_scheme.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "design/difference_set.hpp"
#include "design/primes.hpp"

namespace pairmr {

CyclicDesignScheme::CyclicDesignScheme(std::uint64_t v) : v_(v) {
  PAIRMR_REQUIRE(v >= 2, "cyclic design scheme needs at least two elements");
  q_ = design::smallest_prime_power_order(v);
  PAIRMR_REQUIRE(q_ * q_ * q_ <= (1u << 16),
                 "v too large for the Singer construction (v <= 1681); "
                 "use DesignScheme");
  q_hat_ = design::q_hat(q_);
  dset_ = design::singer_difference_set(q_);

  // Survivor count per translate: how many of (d + t) mod q̂ are < v.
  block_size_.assign(q_hat_, 0);
  for (std::uint64_t t = 0; t < q_hat_; ++t) {
    std::uint8_t count = 0;
    for (const std::uint64_t d : dset_) {
      if ((d + t) % q_hat_ < v_) ++count;
    }
    block_size_[t] = count;
  }
}

std::vector<ElementId> CyclicDesignScheme::survivors(TaskId task) const {
  std::vector<ElementId> out;
  out.reserve(dset_.size());
  for (const std::uint64_t d : dset_) {
    const std::uint64_t e = (d + task) % q_hat_;
    if (e < v_) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> CyclicDesignScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < v_, "element id out of range");
  std::vector<TaskId> out;
  out.reserve(dset_.size());
  for (const std::uint64_t d : dset_) {
    // e in block t  <=>  (e - t) mod q̂ in D  <=>  t = (e - d) mod q̂.
    const TaskId t = (id + q_hat_ - d) % q_hat_;
    if (block_size_[t] >= 2) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementPair> CyclicDesignScheme::pairs_in(TaskId task) const {
  PAIRMR_REQUIRE(task < q_hat_, "task id out of range");
  if (block_size_[task] < 2) return {};
  const auto members = survivors(task);
  std::vector<ElementPair> out;
  out.reserve(members.size() * (members.size() - 1) / 2);
  for (std::size_t i = 1; i < members.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      out.push_back(ElementPair{members[j], members[i]});
    }
  }
  return out;
}

std::vector<ElementId> CyclicDesignScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < q_hat_, "task id out of range");
  if (block_size_[task] < 2) return {};
  return survivors(task);
}

std::uint64_t CyclicDesignScheme::total_pairs() const {
  return pair_count(v_);
}

SchemeMetrics CyclicDesignScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = q_hat_;
  const double sqrt_v = std::sqrt(static_cast<double>(v_));
  m.communication_elements = 2.0 * static_cast<double>(v_) * sqrt_v;
  m.replication_factor = sqrt_v;
  m.working_set_elements = sqrt_v;
  const double q = static_cast<double>(q_);
  m.evaluations_per_task = q * (q + 1.0) / 2.0;
  return m;
}

}  // namespace pairmr
