#include "pairwise/planner.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "common/units.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"

namespace pairmr {

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kBroadcast:
      return "broadcast";
    case SchemeKind::kBlock:
      return "block";
    case SchemeKind::kQuorum:
      return "quorum";
    case SchemeKind::kDesign:
      return "design";
  }
  return "?";
}

Plan plan_scheme(const PlanRequest& request) {
  PAIRMR_REQUIRE(request.v >= 2, "need at least two elements");
  PAIRMR_REQUIRE(request.element_bytes > 0, "element size must be positive");
  PAIRMR_REQUIRE(request.num_nodes >= 1, "need at least one node");
  PAIRMR_REQUIRE(
      request.candidate_fraction >= 0.0 && request.candidate_fraction <= 1.0,
      "PlanRequest::candidate_fraction must be within [0, 1]");

  const std::uint64_t vs =
      checked_mul(request.v, request.element_bytes);  // dataset bytes
  Plan plan;

  // Broadcast: the whole dataset must fit one task's memory.
  plan.broadcast_feasible =
      broadcast_working_set_bytes(request.v, request.element_bytes) <=
      request.limits.max_working_set_bytes;

  // Block: a valid blocking factor must exist; additionally h <= v so that
  // blocks are non-degenerate.
  plan.block_h_bounds = block_h_range(vs, request.limits);
  plan.block_h_bounds.hi = std::min(plan.block_h_bounds.hi, request.v);
  plan.block_feasible = plan.block_h_bounds.valid();

  // Quorum: works for any v, but generic difference covers budget 2√v
  // working-set elements and 2v√v intermediate bytes.
  plan.quorum_feasible =
      quorum_working_set_bytes(request.v, request.element_bytes) <=
          request.limits.max_working_set_bytes &&
      quorum_intermediate_bytes(request.v, request.element_bytes) <=
          request.limits.max_intermediate_bytes;

  // Design: √v-sized working sets and v√v intermediate bytes must fit.
  plan.design_feasible =
      design_working_set_bytes(request.v, request.element_bytes) <=
          request.limits.max_working_set_bytes &&
      design_intermediate_bytes(request.v, request.element_bytes) <=
          request.limits.max_intermediate_bytes;

  std::ostringstream why;
  if (plan.broadcast_feasible) {
    // Cheapest communication: p can equal n, giving 2vn shipped elements.
    plan.feasible = true;
    plan.kind = SchemeKind::kBroadcast;
    plan.broadcast_tasks = request.num_nodes;
    plan.predicted = broadcast_metrics(request.v, plan.broadcast_tasks);
    why << "dataset (" << format_bytes(vs)
        << ") fits one node's working-set limit ("
        << format_bytes(request.limits.max_working_set_bytes)
        << "); broadcast with p = n = " << request.num_nodes
        << " minimizes communication (2vn)";
  } else if (plan.block_feasible || plan.quorum_feasible) {
    plan.feasible = true;
    // Block: smallest valid h minimizes replication/communication (2vh),
    // but keep at least n tasks so no node idles: h(h+1)/2 >= n.
    std::uint64_t h = plan.block_h_bounds.lo;
    if (plan.block_feasible) {
      while (triangular(h) < request.num_nodes &&
             h < plan.block_h_bounds.hi) {
        ++h;
      }
    }
    // Quorum ships 2v·|D| elements with |D| <= 2(⌊√v⌋+1). When occupying
    // n nodes pushes block's replication past that budget (or no valid h
    // exists), cyclic quorums communicate less at exactly v perfectly
    // balanced tasks.
    const std::uint64_t quorum_k = 2 * (isqrt(request.v) + 1);
    if (plan.quorum_feasible && (!plan.block_feasible || quorum_k < h)) {
      plan.kind = SchemeKind::kQuorum;
      plan.predicted = quorum_metrics_approx(request.v, request.num_nodes);
      why << "dataset exceeds broadcast's memory bound, and block needs"
          << " h = " << h << " (replication " << h << ") to reach n = "
          << request.num_nodes << " tasks; cyclic quorums cover all pairs"
          << " with replication <= " << quorum_k << " across exactly v = "
          << request.v << " balanced tasks";
    } else {
      plan.kind = SchemeKind::kBlock;
      plan.block_h = h;
      plan.predicted = block_metrics(request.v, h);
      why << "dataset exceeds broadcast's memory bound; valid blocking range"
          << " h in [" << plan.block_h_bounds.lo << ", "
          << plan.block_h_bounds.hi << "], chose h = " << h
          << " (smallest with h(h+1)/2 >= n tasks)";
      if (triangular(h) < request.num_nodes) {
        why << "; note: even h_max yields fewer tasks than nodes";
      }
    }
  } else if (plan.design_feasible) {
    plan.feasible = true;
    plan.kind = SchemeKind::kDesign;
    plan.predicted = design_metrics_approx(request.v, request.num_nodes);
    why << "quorum's 2*sqrt(v) budget exceeds the limits, but design's"
        << " tighter sqrt(v) working sets fit";
  } else {
    plan.feasible = false;
    why << "no scheme satisfies both limits; use hierarchical processing"
        << " (RunMode::kRounds with coarse grouping, paper Section 7)";
  }
  if (plan.feasible && request.candidate_fraction != 1.0) {
    plan.predicted =
        with_candidate_fraction(plan.predicted, request.candidate_fraction);
    why << "; candidate filter expected to admit "
        << request.candidate_fraction * 100.0 << "% of pairs";
  }
  plan.rationale = why.str();
  return plan;
}

std::shared_ptr<DistributionScheme> make_scheme(
    const Plan& plan, std::uint64_t v, PlaneConstruction construction) {
  PAIRMR_REQUIRE(plan.feasible, "cannot instantiate an infeasible plan");
  switch (plan.kind) {
    case SchemeKind::kBroadcast:
      return std::make_shared<BroadcastScheme>(
          v, std::max<std::uint64_t>(1, plan.broadcast_tasks));
    case SchemeKind::kBlock:
      return std::make_shared<BlockScheme>(v, plan.block_h);
    case SchemeKind::kQuorum:
      return std::make_shared<QuorumScheme>(v);
    case SchemeKind::kDesign:
      return std::make_shared<DesignScheme>(v, construction);
  }
  PAIRMR_CHECK(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace pairmr
