#include "pairwise/tokenset.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/serde.hpp"

namespace pairmr {

namespace {

// Slack applied to the pruning bounds so floating-point rounding can only
// ADMIT a borderline pair, never drop it.
constexpr double kFilterEps = 1e-9;

}  // namespace

std::string encode_token_set(const std::vector<std::uint32_t>& tokens) {
  BufWriter w;
  w.put_u32(static_cast<std::uint32_t>(tokens.size()));
  for (const std::uint32_t t : tokens) w.put_u32(t);
  return std::move(w).str();
}

std::vector<std::uint32_t> decode_token_set(std::string_view payload) {
  BufReader r(payload);
  const std::uint32_t n = r.get_u32();
  std::vector<std::uint32_t> tokens;
  tokens.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) tokens.push_back(r.get_u32());
  return tokens;
}

double jaccard_similarity(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  // Branchless sorted-merge intersection: data-dependent advances compile
  // to conditional moves, which matters at millions of pairs per second.
  std::size_t ia = 0, ib = 0, both = 0;
  while (ia < a.size() && ib < b.size()) {
    const std::uint32_t x = a[ia];
    const std::uint32_t y = b[ib];
    both += (x == y);
    ia += (x <= y);
    ib += (y <= x);
  }
  const std::size_t either = a.size() + b.size() - both;
  return static_cast<double>(both) / static_cast<double>(either);
}

std::uint64_t prefix_length(std::uint64_t size, double threshold) {
  PAIRMR_REQUIRE(threshold >= 0.0 && threshold <= 1.0,
                 "prefix_length needs a threshold within [0, 1]");
  if (size == 0) return 0;
  const double scaled =
      threshold * static_cast<double>(size) - kFilterEps;
  const auto needed = scaled <= 0.0
                          ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(std::ceil(scaled));
  // needed = ⌈t·size⌉ (with over-inclusive rounding); p = size − needed + 1,
  // clamped into [1, size] so t → 0 degrades to "the whole set".
  if (needed == 0 || needed > size) return size;
  return size - needed + 1;
}

bool length_filter_passes(std::uint64_t sa, std::uint64_t sb,
                          double threshold) {
  const double lo = static_cast<double>(std::min(sa, sb));
  const double hi = static_cast<double>(std::max(sa, sb));
  return lo + kFilterEps >= threshold * hi;
}

std::vector<std::uint64_t> minhash_signature(
    const std::vector<std::uint32_t>& tokens, std::uint32_t num_hashes,
    std::uint64_t seed) {
  PAIRMR_REQUIRE(num_hashes > 0, "minhash signature needs >= 1 hash");
  std::vector<std::uint64_t> sig(num_hashes, kEmptySetMinhash);
  for (std::uint32_t h = 0; h < num_hashes; ++h) {
    const std::uint64_t slot_seed = hash_combine(seed, h);
    for (const std::uint32_t t : tokens) {
      // One more fnv1a-style mix so consecutive token ids scatter.
      const std::uint64_t mixed =
          hash_combine(slot_seed, t * 0x100000001b3ull + 0x9e3779b9u);
      sig[h] = std::min(sig[h], mixed);
    }
  }
  return sig;
}

}  // namespace pairmr
