#include "pairwise/delta_scheme.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {

DeltaScheme::DeltaScheme(std::uint64_t base_v, std::uint64_t delta_v,
                         std::uint64_t grid_a, std::uint64_t grid_b)
    : base_v_(base_v),
      delta_v_(delta_v),
      cross_(base_v, delta_v, grid_a, grid_b) {
  // cross_'s constructor already validates base_v/delta_v >= 1 and the
  // grid bounds; nothing more to check here.
}

std::uint64_t DeltaScheme::num_tasks() const {
  return cross_.num_tasks() + (has_intra_task() ? 1 : 0);
}

std::vector<TaskId> DeltaScheme::subsets_of(ElementId id) const {
  std::vector<TaskId> tasks = cross_.subsets_of(id);
  if (id >= base_v_ && has_intra_task()) {
    tasks.push_back(cross_.num_tasks());
  }
  return tasks;
}

std::vector<ElementPair> DeltaScheme::pairs_in(TaskId task) const {
  if (task < cross_.num_tasks()) return cross_.pairs_in(task);
  PAIRMR_REQUIRE(has_intra_task() && task == cross_.num_tasks(),
                 "task id out of range");
  std::vector<ElementPair> pairs;
  pairs.reserve(triangular(delta_v_ - 1));
  const ElementId end = base_v_ + delta_v_;
  for (ElementId lo = base_v_; lo < end; ++lo) {
    for (ElementId hi = lo + 1; hi < end; ++hi) {
      pairs.push_back(ElementPair{lo, hi});
    }
  }
  return pairs;
}

void DeltaScheme::for_each_pair(
    TaskId task, const std::function<void(ElementPair)>& fn) const {
  if (task < cross_.num_tasks()) {
    cross_.for_each_pair(task, fn);
    return;
  }
  PAIRMR_REQUIRE(has_intra_task() && task == cross_.num_tasks(),
                 "task id out of range");
  const ElementId end = base_v_ + delta_v_;
  for (ElementId lo = base_v_; lo < end; ++lo) {
    for (ElementId hi = lo + 1; hi < end; ++hi) fn(ElementPair{lo, hi});
  }
}

std::uint64_t DeltaScheme::total_pairs() const {
  return base_v_ * delta_v_ + triangular(delta_v_ - 1);
}

std::vector<ElementId> DeltaScheme::working_set(TaskId task) const {
  if (task < cross_.num_tasks()) return cross_.working_set(task);
  PAIRMR_REQUIRE(has_intra_task() && task == cross_.num_tasks(),
                 "task id out of range");
  std::vector<ElementId> ids(delta_v_);
  for (std::uint64_t i = 0; i < delta_v_; ++i) {
    ids[i] = base_v_ + i;
  }
  return ids;
}

SchemeMetrics DeltaScheme::metrics() const {
  const SchemeMetrics cross = cross_.metrics();
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = num_tasks();
  // The intra task ships each delta element once more.
  m.communication_elements =
      cross.communication_elements +
      (has_intra_task() ? static_cast<double>(delta_v_) : 0.0);
  m.replication_factor =
      m.communication_elements / static_cast<double>(num_elements());
  m.working_set_elements = std::max(
      cross.working_set_elements,
      has_intra_task() ? static_cast<double>(delta_v_) : 0.0);
  m.evaluations_per_task = std::max(
      cross.evaluations_per_task,
      static_cast<double>(triangular(delta_v_ > 0 ? delta_v_ - 1 : 0)));
  return m;
}

}  // namespace pairmr
