// Design distribution scheme (paper §5.3).
//
// Working sets are the blocks of a (q²+q+1, q+1, 1)-design — a projective
// plane of order q, where q is the smallest admissible order with
// q²+q+1 >= v — truncated to the first v elements. Because every 2-subset
// of points lies in exactly one block, the full pair relation inside each
// block partitions the Cartesian product with no further bookkeeping.
//
// Characteristics (Table 1, design column): ~√v-sized working sets and
// ~(v-1)/2 evaluations per task, but a replication factor of ~√v — the
// scheme trades tiny working sets for voluminous intermediate data.
#pragma once

#include <cstdint>
#include <memory>

#include "design/projective_plane.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

enum class PlaneConstruction {
  // Smallest *prime* q, paper Theorem 2 formula (exactly the paper).
  kTheorem2Prime,
  // Smallest *prime power* q, PG(2,q) over GF(q) (our extension; never a
  // larger q than the prime-only search, hence never more replication).
  kPG2PrimePower,
};

class DesignScheme final : public DistributionScheme {
 public:
  explicit DesignScheme(
      std::uint64_t v,
      PlaneConstruction construction = PlaneConstruction::kTheorem2Prime);

  std::string name() const override { return "design"; }
  std::uint64_t num_elements() const override { return v_; }
  std::uint64_t num_tasks() const override { return blocks_.blocks.size(); }

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  std::uint64_t plane_order() const { return blocks_.q; }

  // q̂ = q²+q+1, the untruncated point count.
  std::uint64_t plane_points() const;

 private:
  std::uint64_t v_;
  design::DesignCollection blocks_;
  // element id -> tasks whose block contains it (sorted).
  std::vector<std::vector<TaskId>> membership_;
};

}  // namespace pairmr
