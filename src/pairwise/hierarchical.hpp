// Round construction for hierarchical processing (paper §7).
//
// The §7 idea: build coarse-grained blocks, process them sequentially,
// and parallelize inside each coarse block with fine-grained blocks. In
// this library a flat BlockScheme with factor H·f already contains all
// the fine blocks; hierarchical execution is just a grouping of its task
// ids by coarse block, fed to run_pairwise_rounds. The same round driver
// also serves the design scheme ("process and aggregate subsets of all
// blocks sequentially") via fixed-size task chunks.
#pragma once

#include <cstdint>
#include <vector>

#include "pairwise/block_scheme.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

// Group the tasks of `fine` (factor h = H·f) by coarse block: round r
// holds every fine block lying inside coarse block r of a factor-H
// tiling. Requires H to divide fine.blocking_factor(). The returned
// rounds partition [0, fine.num_tasks()).
std::vector<std::vector<TaskId>> coarse_block_rounds(
    const BlockScheme& fine, std::uint64_t coarse_h);

// Chunk any scheme's task ids into consecutive groups of at most
// `tasks_per_round` (the §7 sequential-subsets variant for designs).
std::vector<std::vector<TaskId>> chunked_rounds(
    const DistributionScheme& scheme, std::uint64_t tasks_per_round);

}  // namespace pairmr
