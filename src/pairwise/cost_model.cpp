#include "pairwise/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {

namespace {

// Largest integer x with x^1.5 <= y (for the design storage bound).
std::uint64_t floor_pow_2_3(double y) {
  if (y <= 0.0) return 0;
  auto x = static_cast<std::uint64_t>(std::floor(std::pow(y, 2.0 / 3.0)));
  // Float guard: correct in both directions.
  const auto fits = [&](std::uint64_t c) {
    const double cd = static_cast<double>(c);
    return cd * std::sqrt(cd) <= y;
  };
  while (x > 0 && !fits(x)) --x;
  while (fits(x + 1)) ++x;
  return x;
}

}  // namespace

SchemeMetrics broadcast_metrics(std::uint64_t v, std::uint64_t tasks) {
  PAIRMR_REQUIRE(v >= 2 && tasks >= 1, "invalid broadcast parameters");
  SchemeMetrics m;
  m.scheme = "broadcast";
  m.num_tasks = tasks;
  m.communication_elements =
      2.0 * static_cast<double>(v) * static_cast<double>(tasks);
  m.replication_factor = static_cast<double>(tasks);
  m.working_set_elements = static_cast<double>(v);
  m.evaluations_per_task =
      static_cast<double>(pair_count(v)) / static_cast<double>(tasks);
  return m;
}

SchemeMetrics block_metrics(std::uint64_t v, std::uint64_t h) {
  PAIRMR_REQUIRE(v >= 2 && h >= 1, "invalid block parameters");
  SchemeMetrics m;
  const std::uint64_t e = ceil_div(v, h);
  m.scheme = "block";
  m.num_tasks = triangular(h);
  m.communication_elements =
      2.0 * static_cast<double>(v) * static_cast<double>(h);
  m.replication_factor = static_cast<double>(h);
  m.working_set_elements = 2.0 * static_cast<double>(e);
  m.evaluations_per_task = static_cast<double>(e) * static_cast<double>(e);
  return m;
}

SchemeMetrics design_metrics_approx(std::uint64_t v, std::uint64_t n) {
  PAIRMR_REQUIRE(v >= 2 && n >= 1, "invalid design parameters");
  SchemeMetrics m;
  const double sqrt_v = std::sqrt(static_cast<double>(v));
  m.scheme = "design";
  m.num_tasks = v;  // q²+q+1 >= v, Table 1 lists the order of magnitude
  // 2v√v, capped at 2vn — with few nodes each element cannot be shipped
  // to more places than there are nodes (paper §6).
  m.communication_elements =
      std::min(2.0 * static_cast<double>(v) * sqrt_v,
               2.0 * static_cast<double>(v) * static_cast<double>(n));
  m.replication_factor = sqrt_v;
  m.working_set_elements = sqrt_v;
  m.evaluations_per_task = static_cast<double>(v - 1) / 2.0;
  return m;
}

SchemeMetrics quorum_metrics_approx(std::uint64_t v, std::uint64_t n) {
  PAIRMR_REQUIRE(v >= 2 && n >= 1, "invalid quorum parameters");
  SchemeMetrics m;
  // Generic difference covers reach ~2√v elements; the planner budgets for
  // that bound even though exact Singer orders shrink it to √v.
  const double k = 2.0 * std::sqrt(static_cast<double>(v));
  m.scheme = "quorum";
  m.num_tasks = v;
  m.communication_elements =
      std::min(2.0 * static_cast<double>(v) * k,
               2.0 * static_cast<double>(v) * static_cast<double>(n));
  m.replication_factor = k;
  m.working_set_elements = k;
  m.evaluations_per_task = static_cast<double>(v - 1) / 2.0;
  return m;
}

SchemeMetrics with_candidate_fraction(SchemeMetrics metrics,
                                      double fraction) {
  PAIRMR_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "candidate fraction must be within [0, 1] (got " +
                     std::to_string(fraction) + ")");
  metrics.evaluations_per_task *= fraction;
  return metrics;
}

std::uint64_t broadcast_working_set_bytes(std::uint64_t v,
                                          std::uint64_t element_bytes) {
  return checked_mul(v, element_bytes);
}

std::uint64_t block_working_set_bytes(std::uint64_t v, std::uint64_t h,
                                      std::uint64_t element_bytes) {
  return checked_mul(2 * ceil_div(v, h), element_bytes);
}

std::uint64_t design_working_set_bytes(std::uint64_t v,
                                       std::uint64_t element_bytes) {
  // Block size is about √v (exactly q+1 with q²+q+1 >= v).
  return checked_mul(isqrt(v) + 1, element_bytes);
}

std::uint64_t quorum_working_set_bytes(std::uint64_t v,
                                       std::uint64_t element_bytes) {
  // Quorum size is bounded by the two-scale cover: <= 2(⌊√v⌋ + 1).
  return checked_mul(2 * (isqrt(v) + 1), element_bytes);
}

std::uint64_t broadcast_intermediate_bytes(std::uint64_t v, std::uint64_t p,
                                           std::uint64_t element_bytes) {
  return checked_mul(checked_mul(v, p), element_bytes);
}

std::uint64_t block_intermediate_bytes(std::uint64_t v, std::uint64_t h,
                                       std::uint64_t element_bytes) {
  return checked_mul(checked_mul(v, h), element_bytes);
}

std::uint64_t design_intermediate_bytes(std::uint64_t v,
                                        std::uint64_t element_bytes) {
  return checked_mul(checked_mul(v, isqrt(v) + 1), element_bytes);
}

std::uint64_t quorum_intermediate_bytes(std::uint64_t v,
                                        std::uint64_t element_bytes) {
  return checked_mul(checked_mul(v, 2 * (isqrt(v) + 1)), element_bytes);
}

std::uint64_t broadcast_max_v(std::uint64_t element_bytes,
                              std::uint64_t maxws) {
  PAIRMR_REQUIRE(element_bytes > 0, "element size must be positive");
  return maxws / element_bytes;
}

std::uint64_t design_max_v_by_storage(std::uint64_t element_bytes,
                                      std::uint64_t maxis) {
  PAIRMR_REQUIRE(element_bytes > 0, "element size must be positive");
  // v·√v·s <= maxis  =>  v <= (maxis/s)^(2/3).
  return floor_pow_2_3(static_cast<double>(maxis) /
                       static_cast<double>(element_bytes));
}

std::uint64_t design_max_v_by_memory(std::uint64_t element_bytes,
                                     std::uint64_t maxws) {
  PAIRMR_REQUIRE(element_bytes > 0, "element size must be positive");
  const std::uint64_t root = maxws / element_bytes;  // √v <= maxws/s
  return checked_mul(root, root);
}

HRange block_h_range(std::uint64_t dataset_bytes, const Limits& limits) {
  PAIRMR_REQUIRE(dataset_bytes > 0, "dataset size must be positive");
  PAIRMR_REQUIRE(limits.max_working_set_bytes > 0 &&
                     limits.max_intermediate_bytes > 0,
                 "limits must be positive");
  HRange r;
  // 2·vs/h <= maxws  =>  h >= ceil(2·vs/maxws); h is at least 1.
  r.lo = std::max<std::uint64_t>(
      1, ceil_div(2 * dataset_bytes, limits.max_working_set_bytes));
  // vs·h <= maxis  =>  h <= floor(maxis/vs).
  r.hi = limits.max_intermediate_bytes / dataset_bytes;
  return r;
}

std::uint64_t block_max_dataset_bytes(const Limits& limits) {
  // vs <= sqrt(maxws·maxis/2): the intersection of the two h-bounds.
  const double product = static_cast<double>(limits.max_working_set_bytes) *
                         static_cast<double>(limits.max_intermediate_bytes) /
                         2.0;
  auto vs = static_cast<std::uint64_t>(std::floor(std::sqrt(product)));
  // Guard float error against the exact condition 2·vs² <= maxws·maxis.
  const auto ok = [&](std::uint64_t c) {
    const double cd = static_cast<double>(c);
    return 2.0 * cd * cd <=
           static_cast<double>(limits.max_working_set_bytes) *
               static_cast<double>(limits.max_intermediate_bytes);
  };
  while (vs > 0 && !ok(vs)) --vs;
  while (ok(vs + 1)) ++vs;
  return vs;
}

std::uint64_t broadcast_max_v(std::uint64_t element_bytes,
                              const Limits& limits) {
  // Broadcast is memory-bound only (replication equals task count, which
  // the user can lower to n; the paper's Fig 9b treats maxws as binding).
  return broadcast_max_v(element_bytes, limits.max_working_set_bytes);
}

std::uint64_t block_max_v(std::uint64_t element_bytes, const Limits& limits) {
  PAIRMR_REQUIRE(element_bytes > 0, "element size must be positive");
  return block_max_dataset_bytes(limits) / element_bytes;
}

std::uint64_t design_max_v(std::uint64_t element_bytes,
                           const Limits& limits) {
  // Figure 9b plots the design curve from the intermediate-storage limit
  // alone (the scheme's binding constraint in the paper's analysis); the
  // memory bound is exposed separately via design_max_v_by_memory.
  return design_max_v_by_storage(element_bytes,
                                 limits.max_intermediate_bytes);
}

}  // namespace pairmr
