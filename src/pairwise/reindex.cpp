#include "pairwise/reindex.hpp"

#include <memory>
#include <unordered_map>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "mr/context.hpp"

namespace pairmr {

namespace {

using mr::Bytes;

constexpr char kTagDataset = 'D';
constexpr char kTagDictionary = 'K';

// Job 1 reduce: enforce key uniqueness; pass records through sorted.
class DedupReducer final : public mr::Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    PAIRMR_REQUIRE(values.size() == 1,
                   "reindex requires unique keys; duplicate: " + key);
    ctx.emit(key, values.front());
  }
};

// Job 2 map: renumber one shard using its base offset from the cache.
class AssignMapper final : public mr::Mapper {
 public:
  explicit AssignMapper(const std::string& offsets_path)
      : offsets_path_(offsets_path) {}

  void setup(mr::MapContext& ctx) override {
    for (const auto& rec : ctx.cache_file(offsets_path_)) {
      offsets_.emplace(rec.key, decode_u64_key(rec.value));
    }
    const auto it = offsets_.find(ctx.input_path());
    PAIRMR_CHECK(it != offsets_.end(),
                 "no offset recorded for shard " + ctx.input_path());
    next_id_ = it->second;
  }

  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    const std::uint64_t id = next_id_++;
    ctx.emit(encode_u64_key(id), std::string(1, kTagDataset) + value);
    ctx.emit(encode_u64_key(id), std::string(1, kTagDictionary) + key);
  }

 private:
  const std::string& offsets_path_;
  std::unordered_map<std::string, std::uint64_t> offsets_;
  std::uint64_t next_id_ = 0;
};

// Job 3 map: keep one tag, strip it.
class ProjectMapper final : public mr::Mapper {
 public:
  explicit ProjectMapper(char tag) : tag_(tag) {}

  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    PAIRMR_CHECK(!value.empty(), "tagged record missing tag byte");
    if (value.front() == tag_) ctx.emit(key, value.substr(1));
  }

 private:
  char tag_;
};

}  // namespace

ReindexResult reindex(mr::Cluster& cluster,
                      const std::vector<std::string>& input_paths,
                      const std::string& work_dir) {
  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();
  const std::string shard_dir = work_dir + "/shards";
  const std::string tagged_dir = work_dir + "/tagged";
  const std::string dataset_dir = work_dir + "/dataset";
  const std::string dict_dir = work_dir + "/dictionary";
  const std::string offsets_path = work_dir + "/offsets";
  for (const auto& dir :
       {shard_dir, tagged_dir, dataset_dir, dict_dir, offsets_path}) {
    dfs.remove_prefix(dir);
  }

  ReindexResult result;

  // Job 1: shard + dedupe.
  mr::JobSpec shard;
  shard.name = "reindex-shard";
  shard.input_paths = input_paths;
  shard.output_dir = shard_dir;
  shard.mapper_factory = [] { return std::make_unique<mr::IdentityMapper>(); };
  shard.reducer_factory = [] { return std::make_unique<DedupReducer>(); };
  result.shard_job = engine.run(shard);

  // Driver: prefix offsets per shard, shipped via the distributed cache.
  std::vector<mr::Record> offsets;
  std::uint64_t running = 0;
  for (const auto& task : result.shard_job.reduce_tasks) {
    offsets.push_back(
        mr::Record{result.shard_job.output_paths[task.index],
                   encode_u64_key(running)});
    running += task.output_records;
  }
  result.v = running;
  PAIRMR_REQUIRE(result.v >= 2, "reindex needs at least two elements");
  dfs.write_file(offsets_path, /*home=*/0, std::move(offsets));

  // Job 2: assign dense ids; tagged dataset+dictionary stream.
  mr::JobSpec assign;
  assign.name = "reindex-assign";
  assign.input_paths = result.shard_job.output_paths;
  assign.output_dir = tagged_dir;
  assign.cache_paths = {offsets_path};
  assign.mapper_factory = [&offsets_path] {
    return std::make_unique<AssignMapper>(offsets_path);
  };
  assign.reducer_factory = [] {
    return std::make_unique<mr::IdentityReducer>();
  };
  result.assign_job = engine.run(assign);

  // Job 3a/3b: project the tagged stream into the two outputs.
  const auto project = [&](char tag, const std::string& out_dir) {
    mr::JobSpec spec;
    spec.name = std::string("reindex-project-") + tag;
    spec.input_paths = result.assign_job.output_paths;
    spec.output_dir = out_dir;
    spec.mapper_factory = [tag] {
      return std::make_unique<ProjectMapper>(tag);
    };
    // Pure filter: no grouping needed, so skip the shuffle entirely.
    spec.map_only = true;
    return engine.run(spec).output_paths;
  };
  result.dataset_paths = project(kTagDataset, dataset_dir);
  result.dictionary_paths = project(kTagDictionary, dict_dir);

  dfs.remove_prefix(shard_dir);
  dfs.remove_prefix(tagged_dir);
  return result;
}

std::vector<std::string> load_dictionary(const mr::Cluster& cluster,
                                         const ReindexResult& result) {
  std::vector<std::string> dict(result.v);
  for (const auto& path : result.dictionary_paths) {
    for (const auto& rec : cluster.dfs().open(path)->records) {
      const std::uint64_t id = decode_u64_key(rec.key);
      PAIRMR_CHECK(id < result.v, "dictionary id out of range");
      dict[id] = rec.value;
    }
  }
  return dict;
}

}  // namespace pairmr
