// Enumerations of the upper triangle of the v×v pair matrix.
//
// Two enumerations from the paper, both 1-based to match its formulas:
//   * pair labels (Figure 5):  p(i,j) = (i-1)(i-2)/2 + j,  1 <= j < i,
//     labels 1..v(v-1)/2 — used by the broadcast scheme;
//   * block labels (Figure 6): p(I,J) = I(I-1)/2 + J,      1 <= J <= I,
//     labels 1..h(h+1)/2 — used by the block scheme.
// Both directions (label <-> coordinates) are exact integer arithmetic.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr {

// 1-based pair coordinates with i > j.
struct PairIndex {
  std::uint64_t i = 0;
  std::uint64_t j = 0;

  friend bool operator==(const PairIndex&, const PairIndex&) = default;
};

// Figure 5: label of pair (i, j), i > j >= 1. Labels start at 1.
constexpr std::uint64_t pair_label(std::uint64_t i, std::uint64_t j) {
  return (i - 1) * (i - 2) / 2 + j;
}

// Inverse of pair_label. p in [1, v(v-1)/2].
inline PairIndex label_to_pair(std::uint64_t p) {
  PAIRMR_REQUIRE(p >= 1, "pair labels are 1-based");
  // i is the smallest index with T(i-1) = (i-1)(i-2)/2... >= p, i.e. the
  // row whose label range [T(i-2)+1, T(i-1)] contains p, where T(n) is the
  // n-th triangular number. inv_triangular gives the largest n with
  // T(n) <= p-1, so the row above p's row.
  const std::uint64_t n = inv_triangular(p - 1);
  const std::uint64_t i = n + 2;
  const std::uint64_t j = p - (i - 1) * (i - 2) / 2;
  PAIRMR_DCHECK(j >= 1 && j < i, "pair label inversion out of range");
  return PairIndex{i, j};
}

// 1-based block coordinates with J <= I (I indexes column blocks, J row
// blocks; only the upper triangle of blocks is enumerated).
struct BlockIndex {
  std::uint64_t I = 0;
  std::uint64_t J = 0;

  friend bool operator==(const BlockIndex&, const BlockIndex&) = default;
};

// Figure 6: label of block (I, J), J <= I. Labels start at 1.
constexpr std::uint64_t block_label(std::uint64_t I, std::uint64_t J) {
  return I * (I - 1) / 2 + J;
}

// Inverse of block_label. p in [1, h(h+1)/2].
inline BlockIndex label_to_block(std::uint64_t p) {
  PAIRMR_REQUIRE(p >= 1, "block labels are 1-based");
  // I is the smallest index with T(I) >= p: inv_triangular(p-1) is the
  // largest n with T(n) < p, so I = n + 1.
  const std::uint64_t I = inv_triangular(p - 1) + 1;
  const std::uint64_t J = p - I * (I - 1) / 2;
  PAIRMR_DCHECK(J >= 1 && J <= I, "block label inversion out of range");
  return BlockIndex{I, J};
}

}  // namespace pairmr
