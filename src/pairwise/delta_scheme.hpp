// Delta scheme for incremental all-pairs (DESIGN.md §16).
//
// When a batch of k new elements (ids [v, v+k)) arrives on top of v
// already-compared ones (ids [0, v)), the only pairs the union adds are
// the v×k cross rectangle and the C(k,2) intra-delta triangle:
//
//   C(v+k, 2) == C(v,2) [cached] + v·k + C(k,2) [this scheme]
//
// The cross rectangle reuses BipartiteBlockScheme (A = the base set,
// B = the delta) tiled over an ha × hb grid; the intra triangle — tiny
// for serving-sized deltas — is one extra task holding the whole delta.
// Every added pair is covered exactly once, so the scheme runs on the
// unmodified two-job pipeline and its aggregated output merges into the
// cached per-element aggregates without partner collisions.
#pragma once

#include <cstdint>

#include "pairwise/bipartite_scheme.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

class DeltaScheme final : public DistributionScheme {
 public:
  // base_v >= 1 cached elements, delta_v >= 1 new ones; cross-grid
  // factors 1 <= grid_a <= base_v, 1 <= grid_b <= delta_v.
  DeltaScheme(std::uint64_t base_v, std::uint64_t delta_v,
              std::uint64_t grid_a, std::uint64_t grid_b);

  std::string name() const override { return "delta"; }
  std::uint64_t num_elements() const override { return base_v_ + delta_v_; }
  std::uint64_t num_tasks() const override;

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  void for_each_pair(
      TaskId task, const std::function<void(ElementPair)>& fn) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  std::uint64_t base_elements() const { return base_v_; }
  std::uint64_t delta_elements() const { return delta_v_; }

 private:
  // True when the intra-delta triangle is non-empty (delta_v >= 2) and
  // therefore occupies the last task id.
  bool has_intra_task() const { return delta_v_ >= 2; }

  std::uint64_t base_v_, delta_v_;
  BipartiteBlockScheme cross_;
};

}  // namespace pairmr
