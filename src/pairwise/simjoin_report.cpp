#include "pairwise/simjoin_report.hpp"

#include <algorithm>
#include <sstream>

namespace pairmr {

std::string simjoin_to_json(const std::vector<SimjoinPoint>& points) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"simjoin\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SimjoinPoint& p = points[i];
    os << "    {\"filter\": \"" << p.filter << "\", \"threshold\": "
       << p.threshold << ", \"v\": " << p.v
       << ", \"total_pairs\": " << p.total_pairs
       << ", \"candidate_pairs\": " << p.candidate_pairs
       << ", \"survivor_pairs\": " << p.survivor_pairs
       << ", \"pruned_pairs\": " << p.pruned_pairs
       << ", \"exhaustive_seconds\": " << p.exhaustive_seconds
       << ", \"join_seconds\": " << p.join_seconds
       << ", \"exhaustive_pairs_per_s\": " << p.exhaustive_pairs_per_s
       << ", \"join_pairs_per_s\": " << p.join_pairs_per_s
       << ", \"speedup\": " << p.speedup
       << ", \"identical\": " << (p.identical ? "true" : "false") << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passed\": " << (simjoin_all_ok(points) ? "true" : "false")
     << "\n}\n";
  return os.str();
}

bool simjoin_all_ok(const std::vector<SimjoinPoint>& points) {
  return std::all_of(points.begin(), points.end(), [](const SimjoinPoint& p) {
    return p.identical &&
           p.candidate_pairs == p.survivor_pairs + p.pruned_pairs;
  });
}

}  // namespace pairmr
