#include "pairwise/broadcast_scheme.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/triangular.hpp"

namespace pairmr {

BroadcastScheme::BroadcastScheme(std::uint64_t v, std::uint64_t num_tasks)
    : v_(v), tasks_(num_tasks), total_(pair_count(v)) {
  PAIRMR_REQUIRE(v >= 2, "broadcast scheme needs at least two elements");
  PAIRMR_REQUIRE(num_tasks >= 1, "broadcast scheme needs at least one task");
  chunk_ = ceil_div(total_, tasks_);
}

std::vector<TaskId> BroadcastScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < v_, "element id out of range");
  // Every element is replicated into every (non-empty) working set.
  std::vector<TaskId> out;
  for (TaskId t = 0; t < tasks_; ++t) {
    if (label_range(t).last >= label_range(t).first) out.push_back(t);
  }
  return out;
}

BroadcastScheme::LabelRange BroadcastScheme::label_range(TaskId task) const {
  PAIRMR_REQUIRE(task < tasks_, "task id out of range");
  LabelRange r;
  r.first = task * chunk_ + 1;
  r.last = std::min((task + 1) * chunk_, total_);
  return r;
}

void BroadcastScheme::for_each_pair(
    TaskId task, const std::function<void(ElementPair)>& fn) const {
  const LabelRange range = label_range(task);
  if (range.last < range.first) return;
  // Walk the triangular enumeration incrementally: invert the first label,
  // then step (cheaper and simpler than inverting every label).
  PairIndex idx = label_to_pair(range.first);
  for (std::uint64_t p = range.first; p <= range.last; ++p) {
    fn(ElementPair{idx.j - 1, idx.i - 1});  // 1-based -> ids
    if (idx.j + 1 < idx.i) {
      ++idx.j;
    } else {
      ++idx.i;
      idx.j = 1;
    }
  }
}

std::vector<ElementPair> BroadcastScheme::pairs_in(TaskId task) const {
  const LabelRange range = label_range(task);
  std::vector<ElementPair> out;
  if (range.last < range.first) return out;
  out.reserve(range.last - range.first + 1);
  for_each_pair(task, [&out](ElementPair pair) { out.push_back(pair); });
  return out;
}

std::uint64_t BroadcastScheme::total_pairs() const { return total_; }

std::vector<ElementId> BroadcastScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < tasks_, "task id out of range");
  const LabelRange range = label_range(task);
  if (range.last < range.first) return {};
  std::vector<ElementId> all(v_);
  std::iota(all.begin(), all.end(), ElementId{0});
  return all;
}

SchemeMetrics BroadcastScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = tasks_;
  // Table 1, broadcast column: each of the v elements is shipped once per
  // task for the computation and once more for the aggregation.
  m.communication_elements = 2.0 * static_cast<double>(v_) *
                             static_cast<double>(tasks_);
  m.replication_factor = static_cast<double>(tasks_);
  m.working_set_elements = static_cast<double>(v_);
  m.evaluations_per_task = static_cast<double>(chunk_);
  return m;
}

}  // namespace pairmr
