#include "pairwise/simple.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/quorum_scheme.hpp"
#include "pairwise/runner.hpp"

namespace pairmr {

std::vector<Element> compute_all_pairs(
    const std::vector<std::string>& payloads, const PairwiseJob& job,
    const SimpleOptions& options) {
  PAIRMR_REQUIRE(payloads.size() >= 2, "need at least two elements");
  const std::uint64_t v = payloads.size();

  mr::Cluster cluster(options.cluster);
  const auto inputs = write_dataset(cluster, "/dataset", payloads);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.job = job;
  switch (options.scheme) {
    case SchemeKind::kBroadcast: {
      const std::uint64_t p = options.broadcast_tasks == 0
                                  ? cluster.num_nodes()
                                  : options.broadcast_tasks;
      spec.scheme = std::make_shared<BroadcastScheme>(v, p);
      break;
    }
    case SchemeKind::kBlock: {
      // Default h ≈ √(2n): enough tasks for every node, minimal
      // replication beyond that.
      std::uint64_t h = options.block_h;
      if (h == 0) {
        h = 1;
        while (triangular(h) < cluster.num_nodes()) ++h;
      }
      spec.scheme =
          std::make_shared<BlockScheme>(v, std::min<std::uint64_t>(h, v));
      break;
    }
    case SchemeKind::kQuorum:
      spec.scheme = std::make_shared<QuorumScheme>(v);
      break;
    case SchemeKind::kDesign:
      spec.scheme = std::make_shared<DesignScheme>(v, options.plane);
      break;
  }

  const RunReport report = PairwiseRunner(cluster).run(spec);
  return read_elements(cluster, report.output_dir);
}

}  // namespace pairmr
