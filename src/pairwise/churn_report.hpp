// BENCH_churn.json data model: incremental update() vs from-scratch
// batch re-run across churn rates. Shared by bench/bench_churn (which
// emits the document) and tests/pairwise/churn_schema_test.cpp
// (schema + golden), in the BENCH_simjoin.json idiom
// (pairwise/simjoin_report.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pairmr {

struct ChurnPoint {
  std::uint64_t base_v = 0;   // cached elements before the update
  std::uint64_t delta_k = 0;  // elements added by the update
  std::uint64_t batch_pairs = 0;  // C(base_v + delta_k, 2)
  std::uint64_t delta_pairs = 0;  // base_v·delta_k + C(delta_k,2)
  std::uint64_t reused_pairs = 0;  // C(base_v, 2)
  double batch_seconds = 0.0;       // from-scratch run over the union
  double update_seconds = 0.0;      // incremental session update
  double speedup = 0.0;             // batch_seconds / update_seconds
  double analytic_factor = 0.0;     // batch_pairs / delta_pairs
  double gap_gate = 0.0;  // required fraction of the analytic factor
  bool identical = false;  // session state byte-identical to batch output
  bool passed = false;     // identical && tiling && gated speedup
};

// {"bench": "churn", "points": [...], "passed": bool}; `passed` is
// churn_all_ok.
std::string churn_to_json(const std::vector<ChurnPoint>& points);

// Every point's state matched its from-scratch reference, the tiling
// invariant delta + reused == batch held, and the measured speedup
// cleared gap_gate × analytic_factor (floored at beating batch at all).
bool churn_all_ok(const std::vector<ChurnPoint>& points);

}  // namespace pairmr
