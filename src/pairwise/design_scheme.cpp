#include "pairwise/design_scheme.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "design/primes.hpp"

namespace pairmr {

DesignScheme::DesignScheme(std::uint64_t v, PlaneConstruction construction)
    : v_(v) {
  PAIRMR_REQUIRE(v >= 2, "design scheme needs at least two elements");
  std::uint64_t q = 0;
  design::DesignCollection plane;
  switch (construction) {
    case PlaneConstruction::kTheorem2Prime:
      q = design::smallest_prime_order(v);
      plane = design::theorem2_construction(q);
      break;
    case PlaneConstruction::kPG2PrimePower:
      q = design::smallest_prime_power_order(v);
      plane = design::pg2_construction(q);
      break;
  }
  blocks_ = design::truncate(std::move(plane), v);

  membership_.resize(v_);
  for (TaskId t = 0; t < blocks_.blocks.size(); ++t) {
    for (const std::uint64_t e : blocks_.blocks[t]) {
      membership_[e].push_back(t);
    }
  }
  // Blocks are visited in ascending task order, so each membership list is
  // already sorted.
}

std::vector<TaskId> DesignScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < v_, "element id out of range");
  return membership_[id];
}

std::vector<ElementPair> DesignScheme::pairs_in(TaskId task) const {
  PAIRMR_REQUIRE(task < blocks_.blocks.size(), "task id out of range");
  const design::Block& block = blocks_.blocks[task];
  std::vector<ElementPair> out;
  out.reserve(block.size() * (block.size() - 1) / 2);
  // Blocks are sorted ascending, so (block[j], block[i]) is canonical.
  for (std::size_t i = 1; i < block.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      out.push_back(ElementPair{block[j], block[i]});
    }
  }
  return out;
}

std::uint64_t DesignScheme::total_pairs() const { return pair_count(v_); }

std::vector<ElementId> DesignScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < blocks_.blocks.size(), "task id out of range");
  return blocks_.blocks[task];
}

std::uint64_t DesignScheme::plane_points() const {
  return design::q_hat(blocks_.q);
}

SchemeMetrics DesignScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = num_tasks();
  // Table 1, design column: all entries use √v ≈ q+1 elements per block.
  const double sqrt_v = std::sqrt(static_cast<double>(v_));
  m.communication_elements = 2.0 * static_cast<double>(v_) * sqrt_v;
  m.replication_factor = sqrt_v;
  m.working_set_elements = sqrt_v;
  // Exact per-task maximum C(q+1, 2); equals the paper's (v-1)/2 when
  // v = q²+q+1 and stays an upper bound for truncated planes.
  const double q = static_cast<double>(blocks_.q);
  m.evaluations_per_task = q * (q + 1.0) / 2.0;
  return m;
}

}  // namespace pairmr
