// Bipartite (two-set) block scheme — the generalization the paper notes
// in §1: "it is possible to generalize some of the approaches such that
// elements of one set can be paired with elements of another set".
//
// Datasets A and B are laid out in one id space: A = [0, va),
// B = [va, va + vb). The va×vb rectangle of cross pairs is tiled into an
// ha × hb grid of blocks; each block's working set is one A-stripe plus
// one B-stripe, and its pair relation is their full cross product. No
// diagonal special case exists (the sets are disjoint), so every task is
// a uniform rectangle.
//
// Runs on the unmodified two-job pipeline: comp(a, b) results are stored
// under both the A and the B element, and Job 2 aggregates per element
// as usual.
#pragma once

#include <cstdint>

#include "pairwise/scheme.hpp"

namespace pairmr {

class BipartiteBlockScheme final : public DistributionScheme {
 public:
  // va, vb >= 1 elements per side; grid factors 1 <= ha <= va,
  // 1 <= hb <= vb.
  BipartiteBlockScheme(std::uint64_t va, std::uint64_t vb, std::uint64_t ha,
                       std::uint64_t hb);

  std::string name() const override { return "bipartite-block"; }
  std::uint64_t num_elements() const override { return va_ + vb_; }
  std::uint64_t num_tasks() const override { return ha_ * hb_; }

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override { return va_ * vb_; }
  std::vector<ElementId> working_set(TaskId task) const override;

  std::uint64_t size_a() const { return va_; }
  std::uint64_t size_b() const { return vb_; }
  std::uint64_t edge_a() const { return ea_; }
  std::uint64_t edge_b() const { return eb_; }

  // True if `id` belongs to dataset A (first id space).
  bool is_a(ElementId id) const { return id < va_; }

 private:
  struct IdRange {
    ElementId begin = 0;
    ElementId end = 0;
    bool empty() const { return begin >= end; }
  };
  IdRange stripe_a(std::uint64_t coord) const;  // 0-based grid coordinate
  IdRange stripe_b(std::uint64_t coord) const;

  std::uint64_t va_, vb_, ha_, hb_;
  std::uint64_t ea_, eb_;  // stripe edge lengths
};

}  // namespace pairmr
