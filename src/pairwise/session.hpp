// PairwiseSession — long-lived online/incremental all-pairs serving
// (DESIGN.md §16).
//
// A session turns the batch pipeline into a serving loop:
//
//   submit(dataset)  — one batch all-pairs run (the configured scheme
//                      family), persisting per-element aggregates under
//                      the session work dir;
//   update(delta)    — a RunMode::kDelta plan evaluating only the
//                      base_v×k cross pairs plus the C(k,2) intra-delta
//                      triangle, then one merge job folding the delta
//                      intermediates into the persisted aggregates;
//   query / top_k    — served from an in-memory cache over the
//                      persisted state, invalidated per-element on
//                      update.
//
// Cost: an update of k onto v pays v·k + C(k,2) evaluations instead of
// the from-scratch C(v+k,2); cumulatively a session pays exactly the
// batch cost of its final union, C(v_final,2) — no pair is ever
// evaluated twice (merge_copies throws on duplicate partners).
//
// State identity: the merge job is IdentityMapper + AggregateReducer —
// the exact Job 2 a batch run executes — with the same reduce-task
// count and default hash partitioner, and merge_copies is
// deterministic-by-value (results sorted by partner id). The session's
// state files are therefore byte-identical, part file by part file, to
// a from-scratch batch run over the union — the differential oracle in
// tests/pairwise/churn_equivalence_test.cpp holds this across schemes ×
// backends × chaos × spill budgets.
//
// Every run shares one mr::backend::BackendSession, so on the fork
// backend consecutive updates reuse the persistent worker pool instead
// of re-forking per call.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mr/backend/session.hpp"
#include "mr/cluster.hpp"
#include "pairwise/element.hpp"
#include "pairwise/planner.hpp"
#include "pairwise/runner.hpp"

namespace pairmr {

// Decodes one stored result's bytes into a ranking score (top_k only);
// e.g. workloads::decode_result for the 8-byte double kernels.
using ScoreFn = std::function<double(std::string_view)>;

struct SessionOptions {
  // DFS directory owning all session state: input payload files under
  // <work_dir>/input, per-epoch run scratch and the persisted
  // aggregates under <work_dir>/epoch-<e>.
  std::string work_dir = "/session";
  // Scheme family of the initial batch run (and of rebuilds). Broadcast
  // uses the §5.1 one-job driver; the others run two-job.
  SchemeKind batch_scheme = SchemeKind::kBlock;
  std::uint64_t block_h = 0;          // block only; 0 = auto (>= n tasks)
  std::uint64_t broadcast_tasks = 0;  // broadcast only; 0 = one per node
  PlaneConstruction plane = PlaneConstruction::kTheorem2Prime;
  // Engine knobs applied to every run the session executes. work_dir,
  // run_aggregation, cleanup_intermediate and distribute_partitioner
  // are owned by the session (the ctor rejects a custom partitioner —
  // the delta scheme's task space is synthesized).
  PairwiseOptions run;
  // Scoring hook for top_k (query works without one).
  ScoreFn score;
};

struct SessionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidated = 0;
};

class PairwiseSession {
 public:
  // The cluster is borrowed and must outlive the session. The job must
  // have no finalize hook: incremental merging re-aggregates an element
  // across epochs, so a finalize would run once per epoch instead of
  // once per element — post-process downstream of query()/top_k().
  PairwiseSession(mr::Cluster& cluster, PairwiseJob job,
                  SessionOptions options = {});

  // Initial batch all-pairs over `payloads` (dense ids 0..v-1). Must be
  // called exactly once, before any update/query. Returns the batch
  // run's report.
  RunReport submit(const std::vector<std::string>& payloads);

  // Incremental update: k new elements (ids v..v+k-1) enter the set.
  // Runs the delta plan, merges into the persisted aggregates, and
  // invalidates exactly the cache entries whose aggregates changed.
  // On failure the persisted state is untouched (the merge lands in a
  // fresh epoch directory; the state pointer flips only on success) —
  // the session keeps serving pre-update data. The report carries
  // pairs_delta/pairs_reused and, in merge_jobs, the state merge.
  RunReport update(const std::vector<std::string>& delta_payloads);

  // Serve one element's aggregate (payload + all its pair results) from
  // the cache, faulting it in from the persisted state on a miss.
  const Element& query(ElementId id);

  // The k best-scoring partners of `id` under options.score, ties
  // broken by ascending partner id. Requires a score hook.
  std::vector<ResultEntry> top_k(ElementId id, std::size_t k);

  std::uint64_t num_elements() const { return v_; }
  // Completed update epochs (0 right after submit).
  std::uint64_t epoch() const { return epoch_; }
  // Directory of the persisted per-element aggregates (Figure 2 layout,
  // one part-r-NNNNN per reduce task).
  const std::string& state_dir() const { return state_dir_; }
  const std::vector<std::string>& state_paths() const {
    return state_paths_;
  }
  // Every payload file submitted so far (base + deltas) — the input a
  // from-scratch batch run over the union would take.
  const std::vector<std::string>& input_paths() const {
    return input_paths_;
  }
  // Kernel evaluations across submit and every update. Equals a batch
  // run's C(v,2) for the current v: the delta plans tile exactly-once.
  std::uint64_t cumulative_evaluations() const { return evaluations_; }
  const SessionCacheStats& cache_stats() const { return stats_; }

  // The scheme the session family/knobs produce for a v-element batch
  // run — public so differential tests can build from-scratch
  // references with the identical construction. Broadcast is not a
  // two-job scheme here; batch runs use RunMode::kBroadcast instead.
  static std::shared_ptr<DistributionScheme> batch_scheme(
      SchemeKind kind, std::uint64_t v, std::uint64_t num_nodes,
      std::uint64_t block_h, PlaneConstruction plane);

 private:
  PairwiseOptions epoch_options(std::uint64_t epoch) const;
  const Element* find_cached(ElementId id);

  mr::Cluster& cluster_;
  PairwiseJob job_;
  SessionOptions options_;
  PairwiseRunner runner_;
  mr::backend::BackendSession backend_;

  std::uint64_t v_ = 0;      // elements covered by the persisted state
  std::uint64_t epoch_ = 0;  // completed updates
  std::vector<std::string> input_paths_;
  std::vector<std::string> state_paths_;
  std::string state_dir_;
  std::uint64_t evaluations_ = 0;

  std::unordered_map<ElementId, Element> cache_;
  SessionCacheStats stats_;
};

}  // namespace pairmr
