#include "pairwise/scheme.hpp"

#include <algorithm>

namespace pairmr {

void DistributionScheme::for_each_pair(
    TaskId task, const std::function<void(ElementPair)>& fn) const {
  for (const ElementPair pair : pairs_in(task)) fn(pair);
}

std::uint64_t DistributionScheme::total_pairs() const {
  std::uint64_t total = 0;
  for (TaskId t = 0; t < num_tasks(); ++t) total += pairs_in(t).size();
  return total;
}

std::vector<ElementId> DistributionScheme::working_set(TaskId task) const {
  // Generic (slow) derivation: scan all elements. Schemes override.
  std::vector<ElementId> out;
  for (ElementId id = 0; id < num_elements(); ++id) {
    const auto tasks = subsets_of(id);
    if (std::binary_search(tasks.begin(), tasks.end(), task)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace pairmr
