// Broadcast distribution scheme (paper §5.1).
//
// Every working set is the whole dataset (D_1 = ... = D_b = S); the pair
// relation of task l is the contiguous label range
//   [(l-1)h + 1, min(l·h, v(v-1)/2)]   with h = ⌈v(v-1)/2 / p⌉
// of the Figure 5 triangular enumeration. Suited to moderate datasets
// with expensive compute; the working set (= v elements) must fit in one
// node's memory.
//
// The paper's h = ⌊·⌋ is taken as ⌈·⌉; with a floor, the trailing
// v(v-1)/2 mod p labels would belong to no task (see DESIGN.md §7).
#pragma once

#include <cstdint>

#include "pairwise/scheme.hpp"

namespace pairmr {

class BroadcastScheme final : public DistributionScheme {
 public:
  // v >= 2 elements split across `num_tasks` >= 1 tasks. Tasks may be
  // chosen freely (the scheme's Table 1 advantage); tasks beyond the pair
  // count get empty ranges.
  BroadcastScheme(std::uint64_t v, std::uint64_t num_tasks);

  std::string name() const override { return "broadcast"; }
  std::uint64_t num_elements() const override { return v_; }
  std::uint64_t num_tasks() const override { return tasks_; }

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  // Streams the label range without materializing (a task's chunk can be
  // arbitrarily large for small p).
  void for_each_pair(
      TaskId task,
      const std::function<void(ElementPair)>& fn) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  // Labels handled by `task` (1-based, inclusive); empty range if the
  // task has no work. Exposed for the one-job broadcast pipeline.
  struct LabelRange {
    std::uint64_t first = 1;
    std::uint64_t last = 0;  // inclusive; last < first means empty
  };
  LabelRange label_range(TaskId task) const;

  std::uint64_t labels_per_task() const { return chunk_; }

 private:
  std::uint64_t v_;
  std::uint64_t tasks_;
  std::uint64_t total_;  // v(v-1)/2
  std::uint64_t chunk_;  // h = ceil(total / tasks)
};

}  // namespace pairmr
