// Dataset I/O helpers: move payloads in and results out of the simulated
// DFS in the pipeline's record format (key = big-endian u64 id,
// value = raw payload / encoded element).
#pragma once

#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "pairwise/element.hpp"

namespace pairmr {

// Records for a dataset whose element ids are the payload indices,
// shifted by `first_id` (a delta batch appends at first_id = base v).
std::vector<mr::Record> to_dataset_records(
    const std::vector<std::string>& payloads, ElementId first_id = 0);

// Scatter `payloads` across the cluster under `dir` (dense ids
// first_id..first_id+v-1, one file per node). Returns the created DFS
// paths.
std::vector<std::string> write_dataset(
    mr::Cluster& cluster, const std::string& dir,
    const std::vector<std::string>& payloads, ElementId first_id = 0);

// Decode every element file under `prefix`, sorted by id.
std::vector<Element> read_elements(const mr::Cluster& cluster,
                                   const std::string& prefix);

}  // namespace pairmr
