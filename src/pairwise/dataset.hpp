// Dataset I/O helpers: move payloads in and results out of the simulated
// DFS in the pipeline's record format (key = big-endian u64 id,
// value = raw payload / encoded element).
#pragma once

#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "pairwise/element.hpp"

namespace pairmr {

// Records for a dataset whose element ids are the payload indices.
std::vector<mr::Record> to_dataset_records(
    const std::vector<std::string>& payloads);

// Scatter `payloads` across the cluster under `dir` (dense ids 0..v-1,
// one file per node). Returns the created DFS paths.
std::vector<std::string> write_dataset(mr::Cluster& cluster,
                                       const std::string& dir,
                                       const std::vector<std::string>& payloads);

// Decode every element file under `prefix`, sorted by id.
std::vector<Element> read_elements(const mr::Cluster& cluster,
                                   const std::string& prefix);

}  // namespace pairmr
