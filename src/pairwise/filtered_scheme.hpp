// FilteredScheme: restrict any scheme to a subset of its tasks.
//
// The building block of the paper's §7 hierarchical processing: a round
// executes only the tasks in its filter, and a sequence of rounds whose
// filters partition the base scheme's task ids covers every pair exactly
// once overall while bounding per-round intermediate storage.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "pairwise/scheme.hpp"

namespace pairmr {

class FilteredScheme final : public DistributionScheme {
 public:
  // `base` must outlive this wrapper. `active` lists base task ids to keep.
  FilteredScheme(const DistributionScheme& base, std::vector<TaskId> active);

  std::string name() const override { return base_.name() + "/filtered"; }
  std::uint64_t num_elements() const override { return base_.num_elements(); }
  std::uint64_t num_tasks() const override { return base_.num_tasks(); }

  // Base tasks not in the active set are dropped from membership lists;
  // their pair relations are empty in this round.
  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override { return base_.metrics(); }
  std::vector<ElementId> working_set(TaskId task) const override;

  const std::vector<TaskId>& active_tasks() const { return active_; }

 private:
  const DistributionScheme& base_;
  std::vector<TaskId> active_;
  std::unordered_set<TaskId> active_set_;
};

}  // namespace pairmr
