// Planner: choose a distribution scheme and its parameters for a dataset
// under environment limits — the decision logic of the paper's §6 /
// Figure 9 discussion, packaged as an API.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pairwise/cost_model.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

enum class SchemeKind { kBroadcast, kBlock, kQuorum, kDesign };

const char* to_string(SchemeKind kind);

struct PlanRequest {
  std::uint64_t v = 0;             // dataset cardinality
  std::uint64_t element_bytes = 0; // the paper's s
  std::uint64_t num_nodes = 1;     // n
  Limits limits;
  // Expected fraction of C(v,2) surviving candidate generation — 1.0 for
  // exhaustive runs, < 1 for similarity joins (RunMode::kSimilarityJoin).
  // Scales the plan's predicted evaluations_per_task only: candidate
  // pruning is applied reduce-side, after distribution, so feasibility
  // (working sets, intermediate storage) is unaffected.
  double candidate_fraction = 1.0;
};

struct Plan {
  bool feasible = false;
  SchemeKind kind = SchemeKind::kBroadcast;

  // Parameters for the chosen scheme.
  std::uint64_t broadcast_tasks = 0;  // broadcast: p
  std::uint64_t block_h = 0;          // block: blocking factor

  // Per-scheme feasibility under the request's limits.
  bool broadcast_feasible = false;
  bool block_feasible = false;
  bool quorum_feasible = false;
  bool design_feasible = false;
  HRange block_h_bounds;

  // Human-readable explanation of the decision.
  std::string rationale;

  // Predicted Table 1 metrics of the chosen configuration.
  SchemeMetrics predicted;
};

// Evaluate feasibility of every scheme and pick one. Preference among the
// feasible: least communication volume — broadcast with p = n when the
// dataset fits in memory; else block with the smallest valid h that still
// yields >= n tasks, unless occupying n nodes pushes h past the quorum
// cover budget 2(⌊√v⌋+1), in which case cyclic quorums (any v, exactly v
// perfectly balanced tasks) ship less data; else design (√v working sets
// — the tight-storage fallback when quorum's 2√v budget does not fit).
// Infeasible everywhere => feasible=false and the rationale points to
// §7's hierarchical processing.
Plan plan_scheme(const PlanRequest& request);

// Instantiate the planned scheme (request.v elements). For design plans,
// `construction` selects the plane construction. Returns shared ownership
// so the handle can be dropped straight into RunSpec::scheme (which owns
// its scheme) or cached across runs by a long-lived session.
std::shared_ptr<DistributionScheme> make_scheme(
    const Plan& plan, std::uint64_t v,
    PlaneConstruction construction = PlaneConstruction::kTheorem2Prime);

}  // namespace pairmr
