// Cyclic design scheme: the design distribution scheme backed by a
// Singer difference set instead of explicit block lists.
//
// Block t of the cyclic plane is D + t (mod q̂), so getSubsets(e) is the
// O(q) arithmetic  { (e − d) mod q̂ : d ∈ D }  — no inverted index over
// the dataset. Memory is O(q) for the difference set plus one byte per
// block for the truncation-survivor count, versus the explicit scheme's
// O(v·q) membership lists. Semantically equivalent to
// DesignScheme(v, kPG2PrimePower) up to block numbering; covered by the
// same exactly-once property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "pairwise/scheme.hpp"

namespace pairmr {

class CyclicDesignScheme final : public DistributionScheme {
 public:
  // Requires the smallest admissible plane order q (prime power with
  // q²+q+1 >= v) to satisfy q³ <= 2^16, i.e. v <= 1681; larger datasets
  // use DesignScheme.
  explicit CyclicDesignScheme(std::uint64_t v);

  std::string name() const override { return "cyclic-design"; }
  std::uint64_t num_elements() const override { return v_; }
  // All q̂ translates count as tasks; translates left with fewer than two
  // elements after truncation are inactive (empty pair relations).
  std::uint64_t num_tasks() const override { return q_hat_; }

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  std::uint64_t plane_order() const { return q_; }
  const std::vector<std::uint64_t>& difference_set() const { return dset_; }

 private:
  // Elements of block `task` that survive truncation (< v), sorted.
  std::vector<ElementId> survivors(TaskId task) const;

  std::uint64_t v_ = 0;
  std::uint64_t q_ = 0;
  std::uint64_t q_hat_ = 0;
  std::vector<std::uint64_t> dset_;
  std::vector<std::uint8_t> block_size_;  // survivors per translate
};

}  // namespace pairmr
