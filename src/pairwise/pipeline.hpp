// The pairwise-computation MR pipeline (paper §4, Algorithms 1 and 2).
//
// Job 1 ("distribute & compare"): map replicates each element into the
// working sets chosen by the scheme's getSubsets; the sort/shuffle phase
// collects each working set at one reducer; reduce evaluates the scheme's
// getPairs relation and emits every element copy with the partial results
// attached, keyed by element id.
//
// Job 2 ("aggregate", optional): groups all copies of an element and
// merges their partial results into one element per id (Figure 2 layout).
//
// A one-job broadcast variant (paper §5.1) ships the dataset through the
// distributed cache, evaluates pair-label ranges in map, and aggregates
// in reduce.
//
// A round-based driver (paper §7) executes any scheme's tasks in groups,
// aggregating after each round so intermediate data never exceeds one
// round's volume.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "mr/job.hpp"
#include "pairwise/element.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

// comp(a, b): both elements carry id and payload; results lists are not
// populated at call time. Returns opaque result bytes.
using ComputeFn =
    std::function<std::string(const Element& a, const Element& b)>;

// Decode-once kernel: `prepare` decodes an element's payload into a typed
// handle exactly once per task; `compare` evaluates comp() over two
// handles without touching the wire encoding again. A compute-light
// kernel over a working set of e elements thus pays O(e) decode work
// instead of the O(e²) a plain ComputeFn pays (one decode per side per
// pair). `compare` MUST return bytes identical to the job's ComputeFn on
// the same elements — the pipeline equivalence harness certifies this
// for the bundled kernels.
struct PreparedKernel {
  // Typed, decoded view of one element's payload. Ownership is shared so
  // handles may outlive the task-local Element they were prepared from.
  using Handle = std::shared_ptr<const void>;

  std::function<Handle(const Element&)> prepare;
  std::function<std::string(const void* a, const void* b)> compare;

  explicit operator bool() const {
    return prepare != nullptr && compare != nullptr;
  }
};

// Result filter (e.g. DBSCAN keeps only distances below eps). Applied
// before a result is attached; the evaluation itself still counts.
using KeepFn = std::function<bool(const Element& a, const Element& b,
                                  std::string_view result)>;

// Applied to each fully aggregated element in Job 2's reduce (the paper's
// application-defined aggregateResults hook).
using FinalizeFn = std::function<void(Element&)>;

enum class Symmetry {
  kSymmetric,     // comp(a,b) == comp(b,a): evaluate once, attach to both
  kNonSymmetric,  // evaluate comp(a,b) for a, comp(b,a) for b
};

struct PairwiseJob {
  ComputeFn compute;
  // Optional decode-once fast path for `compute` (see PreparedKernel).
  // When set, the compare phase prepares each working-set element once
  // and calls `prepared.compare` per pair; when empty, every pair runs
  // through `compute` (the seed path — user kernels keep working).
  PreparedKernel prepared;
  KeepFn keep;          // null: keep every result
  FinalizeFn finalize;  // null: no post-processing
  Symmetry symmetry = Symmetry::kSymmetric;
};

// The compare phase's inner loop, shared by the two-job compare reducer,
// the one-job broadcast mapper, the rounds driver (via the reducer), and
// bench_hotpath. Construction prepares every element exactly once when
// the job carries a PreparedKernel; evaluate() then runs comp() per pair
// without re-decoding, falling back to the plain ComputeFn otherwise.
// `job` and `elems` are borrowed and must outlive the evaluator.
class PairEvaluator {
 public:
  PairEvaluator(const PairwiseJob& job, const std::vector<Element>& elems);

  // Evaluate the pair at slots (lo, hi) under the job's symmetry mode,
  // appending kept results to each side's accumulator (Algorithm 1's two
  // addResult calls).
  void evaluate(std::size_t lo, std::size_t hi,
                std::vector<ResultEntry>& lo_acc,
                std::vector<ResultEntry>& hi_acc);

  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t kept() const { return kept_; }

 private:
  std::string invoke(std::size_t a, std::size_t b) const;

  const PairwiseJob& job_;
  const std::vector<Element>& elems_;
  std::vector<PreparedKernel::Handle> handles_;  // empty without a kernel
  std::uint64_t evaluations_ = 0;
  std::uint64_t kept_ = 0;
};

// Kernel family a similarity join evaluates. Only set-overlap kernels
// admit the candidate filters (prefix, LSH banding) — the vector entries
// exist so validation can reject them with an actionable message instead
// of silently producing wrong prunes.
enum class SimilarityKernel {
  kJaccardTokenSet,  // sorted u32 token sets (workloads shingling format)
  kCosineVector,     // rejected: no set-overlap bound
  kEuclideanVector,  // rejected: no set-overlap bound
};

const char* to_string(SimilarityKernel kernel);

// How candidate pairs are generated before the pairwise phase.
enum class CandidateFilter {
  // Exact: prefix filtering under a global rare-first token-frequency
  // order, plus length filtering. Candidates are a strict superset of the
  // true survivors, so join output is byte-identical to the exhaustive
  // run's threshold-filtered output.
  kPrefix,
  // Probabilistic: minhash LSH banding (lsh_bands bands × lsh_rows rows).
  // Survivors are always a SUBSET of the exhaustive survivors (no false
  // positives — the exact kernel settles every candidate), but a pair
  // whose signature never collides is missed; recall rises with bands.
  kLshBanding,
};

const char* to_string(CandidateFilter filter);

// Knobs of RunMode::kSimilarityJoin (pairwise/runner.hpp): a candidate
// generation phase feeds only surviving pairs into the two-job pairwise
// phase over RunSpec::scheme. threshold <= 0 keeps every pair and skips
// candidate generation entirely (pruning could only waste work: even
// disjoint sets survive J >= 0).
struct SimilarityJoinOptions {
  double threshold = 0.5;  // keep pairs with similarity >= threshold
  SimilarityKernel kernel = SimilarityKernel::kJaccardTokenSet;
  CandidateFilter filter = CandidateFilter::kPrefix;
  // LSH parameters (CandidateFilter::kLshBanding only).
  std::uint32_t lsh_bands = 16;
  std::uint32_t lsh_rows = 2;
  std::uint64_t lsh_seed = 0x5eed;
};

struct PairwiseOptions {
  // DFS directory for intermediate and output files.
  std::string work_dir = "/pairwise";
  // Reduce tasks per job; 0 = one per cluster node.
  std::uint32_t num_reduce_tasks = 0;
  // Map-task granularity over the input files; 0 = one task per file.
  std::uint64_t max_records_per_split = 0;
  // Run the aggregation job (paper: optional, application-dependent).
  bool run_aggregation = true;
  // Remove Job 1 output after aggregation.
  bool cleanup_intermediate = true;
  // Map-side combiner for the aggregation job: copies of an element that
  // sit in the same map task are pre-merged before the shuffle (legal
  // because merging result lists is associative). Shrinks Job 2's shuffle
  // volume at some map-side CPU cost; see bench_ablation.
  bool aggregation_combiner = false;
  // Partitioner for the distribute job's task-id keys (Job 1 and round
  // jobs); nullptr uses the engine default (hash). A RangePartitioner over
  // the scheme's task-id space with num_reduce_tasks == num_tasks gives
  // each scheme task its own engine reduce task — required when per-task
  // measurements (tracing) must see the scheme's work units unmerged.
  std::shared_ptr<const mr::Partitioner> distribute_partitioner;
  // Deterministic fault injection (mr/fault.hpp) applied to every job the
  // pipeline runs. Non-owning — must outlive the call; nullptr runs
  // fault-free. Faults change cost (retries, recovery traffic), never the
  // aggregated output.
  const mr::FaultPlan* fault_plan = nullptr;
  // Speculatively re-execute tasks the plan marks as stragglers.
  bool speculative_execution = true;
  // Per-task memory budget applied to every job the pipeline runs
  // (mr/job.hpp): map tasks spill sorted runs to DFS scratch instead of
  // buffering past the budget, reduce tasks stream their input through a
  // k-way merge. Disabled (fully in-memory) by default; enabling changes
  // cost counters only, never the aggregated output.
  mr::MemoryBudget memory_budget;
  // Execution substrate for every job the pipeline runs
  // (mr/backend/backend.hpp): kFork executes task attempts in forked
  // worker processes, one per cluster node. kAuto defers to the
  // PAIRMR_TEST_BACKEND environment variable, then in-process. The
  // aggregated output, counters, and traffic totals are identical across
  // backends by construction.
  mr::BackendKind backend = mr::BackendKind::kAuto;
  // Shuffle transport of the fork backend (mr/job.hpp's ShufflePlane):
  // kShm publishes map output into memfd arenas passed by fd and mmap'd
  // by reducers, kSocket streams over the per-worker shuffle sockets.
  // kAuto defers to PAIRMR_SHUFFLE_PLANE, then socket. Output, counters,
  // and traffic totals are identical across planes by construction; the
  // in-process backend ignores it.
  mr::ShufflePlane shuffle_plane = mr::ShufflePlane::kAuto;
  // Similarity-join knobs, consulted only by RunMode::kSimilarityJoin.
  SimilarityJoinOptions similarity_join;
};

// Custom counters emitted by the pipeline.
namespace counter {
inline constexpr const char* kEvaluations = "pairwise.evaluations";
inline constexpr const char* kResultsKept = "pairwise.results.kept";
// Similarity-join Table 1 extension (emitted by the join's compute
// reducer, one source of truth whatever the candidate filter):
// candidate = pairs that reached the exact kernel, survivor = pairs at or
// above the threshold, pruned = candidates the kernel rejected. The
// invariant pairs.candidate == pairs.survivor + pairs.pruned holds per
// run by construction.
inline constexpr const char* kCandidatePairs = "pairs.candidate";
inline constexpr const char* kSurvivorPairs = "pairs.survivor";
inline constexpr const char* kPrunedPairs = "pairs.pruned";
// Candidate-generation phase: pre-dedup (token- or band-collision)
// contributions and post-dedup distinct candidate pairs. The latter must
// equal pairs.candidate — the compute phase evaluates each exactly once.
inline constexpr const char* kCandidateContributions =
    "simjoin.candidate.contributions";
inline constexpr const char* kCandidateDistinct = "simjoin.candidate.pairs";
}  // namespace counter

struct PairwiseRunStats {
  mr::JobResult distribute_job;  // Job 1
  mr::JobResult aggregate_job;   // Job 2 (default-constructed if skipped)
  bool aggregated = false;

  std::uint64_t evaluations = 0;
  std::uint64_t results_kept = 0;

  // Measured counterparts of Table 1's metrics.
  double replication_factor = 0.0;          // map-output copies / v
  std::uint64_t max_working_set_records = 0;  // largest reduce group
  std::uint64_t max_working_set_bytes = 0;
  std::uint64_t intermediate_bytes = 0;  // materialized between the jobs
  std::uint64_t shuffle_remote_bytes = 0;  // network volume, both jobs
  std::uint64_t cache_broadcast_bytes = 0;

  std::string output_dir;  // final element files (Figure 2 layout)
};

// Generic two-job pipeline over any distribution scheme. `input_paths`
// are DFS files whose records are (big-endian u64 id, raw payload); ids
// must be dense 0..v-1 with v == scheme.num_elements().
// The scheme must outlive the call.
//
// Deprecated: thin wrapper over PairwiseRunner (pairwise/runner.hpp),
// kept for source compatibility. New code should build a RunSpec with
// RunMode::kTwoJob and read the unified RunReport.
[[deprecated("use PairwiseRunner")]]
PairwiseRunStats run_pairwise(mr::Cluster& cluster,
                              const std::vector<std::string>& input_paths,
                              const DistributionScheme& scheme,
                              const PairwiseJob& job,
                              const PairwiseOptions& options = {});

// One-job broadcast variant (paper §5.1): the dataset travels via the
// distributed cache; only results are shuffled. `num_tasks` is the
// paper's p (its Table 1 advantage: freely chosen).
//
// Deprecated: thin wrapper over PairwiseRunner (RunMode::kBroadcast).
[[deprecated("use PairwiseRunner")]]
PairwiseRunStats run_pairwise_broadcast(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    std::uint64_t v, std::uint64_t num_tasks, const PairwiseJob& job,
    const PairwiseOptions& options = {});

// Round-based execution (paper §7): `rounds` partitions the scheme's task
// ids; each round runs Job 1 on its tasks only and is aggregated into the
// accumulated output before the next round starts, bounding intermediate
// storage by the largest single round.
struct HierarchicalRunStats {
  std::vector<mr::JobResult> round_jobs;
  std::vector<mr::JobResult> merge_jobs;

  std::uint64_t evaluations = 0;
  std::uint64_t results_kept = 0;
  std::uint64_t peak_intermediate_bytes = 0;  // max over rounds
  std::uint64_t max_working_set_records = 0;
  std::uint64_t max_working_set_bytes = 0;
  std::uint64_t shuffle_remote_bytes = 0;

  std::string output_dir;
};

// Deprecated: thin wrapper over PairwiseRunner (RunMode::kRounds).
[[deprecated("use PairwiseRunner")]]
HierarchicalRunStats run_pairwise_rounds(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    const DistributionScheme& scheme,
    const std::vector<std::vector<TaskId>>& rounds, const PairwiseJob& job,
    const PairwiseOptions& options = {});

}  // namespace pairmr
