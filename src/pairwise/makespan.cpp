#include "pairwise/makespan.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/cost_model.hpp"

namespace pairmr {

MakespanBreakdown estimate_makespan(const SchemeMetrics& metrics,
                                    std::uint64_t v,
                                    std::uint64_t element_bytes,
                                    std::uint64_t n, const CostRates& rates,
                                    std::uint64_t result_bytes) {
  PAIRMR_REQUIRE(v >= 2 && n >= 1, "invalid makespan parameters");
  MakespanBreakdown out;
  out.scheme = metrics.scheme;

  // Distribution: half the Table 1 communication volume is the initial
  // shipping of replicated elements (the other half is the aggregation
  // pass, accounted below with result payloads added).
  const double shipped_elements = metrics.communication_elements / 2.0;
  out.ship_seconds = shipped_elements *
                     static_cast<double>(element_bytes) *
                     rates.network_seconds_per_byte;

  // Compute: tasks run in waves of n; each wave costs the per-task
  // evaluation bound.
  const std::uint64_t waves = ceil_div(metrics.num_tasks, n);
  out.compute_seconds = static_cast<double>(waves) *
                        metrics.evaluations_per_task *
                        rates.compute_seconds_per_eval;

  // Aggregation: every element copy travels once more, now carrying its
  // share of results (total 2·C(v,2) result entries over all copies).
  const double result_payload =
      2.0 * static_cast<double>(pair_count(v)) *
      static_cast<double>(result_bytes);
  out.aggregate_seconds =
      (shipped_elements * static_cast<double>(element_bytes) +
       result_payload) *
      rates.network_seconds_per_byte;

  out.overhead_seconds =
      static_cast<double>(metrics.num_tasks) * rates.task_overhead_seconds /
      static_cast<double>(n);
  return out;
}

SchemeComparison compare_makespans(std::uint64_t v,
                                   std::uint64_t element_bytes,
                                   std::uint64_t n, std::uint64_t block_h,
                                   const CostRates& rates) {
  PAIRMR_REQUIRE(block_h >= 1, "block factor must be positive");
  SchemeComparison out;
  out.broadcast =
      estimate_makespan(broadcast_metrics(v, n), v, element_bytes, n, rates);
  out.block = estimate_makespan(block_metrics(v, block_h), v, element_bytes,
                                n, rates);
  out.design = estimate_makespan(design_metrics_approx(v, n), v,
                                 element_bytes, n, rates);

  out.winner = "broadcast";
  double best = out.broadcast.total();
  if (out.block.total() < best) {
    best = out.block.total();
    out.winner = "block";
  }
  if (out.design.total() < best) {
    out.winner = "design";
  }
  return out;
}

}  // namespace pairmr
