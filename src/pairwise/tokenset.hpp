// Token-set primitives for set-similarity workloads.
//
// Lives in the pairwise layer (not workloads) because the similarity-join
// runner synthesizes its jaccard kernel and candidate filters from these
// functions, and pairmr_workloads already links against pairmr_pairwise —
// the workloads kernels (workloads/kernels.hpp) delegate here so both
// layers compute bit-identical similarities.
//
// Payload format (shared with workloads::document_payloads): u32 token
// count followed by that many u32 token ids, sorted ascending and
// deduplicated — a set, not a bag.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pairmr {

// --- codec ---------------------------------------------------------------

std::string encode_token_set(const std::vector<std::uint32_t>& tokens);
std::vector<std::uint32_t> decode_token_set(std::string_view payload);

// --- similarity ----------------------------------------------------------

// Jaccard similarity |a∩b| / |a∪b| of two sorted token-id sets.
// J(∅, ∅) is defined as 1.0 (two empty documents are identical).
double jaccard_similarity(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b);

// --- candidate-filter math (similarity join, DESIGN.md §14) --------------
//
// Both bounds are used to PRUNE pairs, so any floating-point slack is
// applied in the over-inclusive direction: a borderline pair becomes a
// candidate (and is settled by the exact kernel) rather than dropped.

// Prefix-filter prefix length for a set of `size` tokens under Jaccard
// threshold `t`: p = size − ⌈t·size⌉ + 1, clamped to [1, size]. Two sets
// with J ≥ t > 0 must share at least one token within their prefixes
// under any common total token order. Returns 0 for an empty set.
std::uint64_t prefix_length(std::uint64_t size, double threshold);

// Length filter: J(a,b) ≥ t implies t·max(|a|,|b|) ≤ min(|a|,|b|).
// Returns true when sizes (sa, sb) survive that necessary condition.
bool length_filter_passes(std::uint64_t sa, std::uint64_t sb,
                          double threshold);

// --- minhash (LSH banding) ----------------------------------------------

// Sentinel minhash value of the empty set: all-identical signatures, so
// empty documents (J(∅,∅) = 1) always land in the same LSH buckets.
inline constexpr std::uint64_t kEmptySetMinhash = ~std::uint64_t{0};

// `num_hashes` seeded minhash values of a token set: slot h holds the
// minimum of mix(seed, h, token) over the tokens. Deterministic across
// platforms (fnv1a/hash_combine, common/hash.hpp).
std::vector<std::uint64_t> minhash_signature(
    const std::vector<std::uint32_t>& tokens, std::uint32_t num_hashes,
    std::uint64_t seed);

}  // namespace pairmr
