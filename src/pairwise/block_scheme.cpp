#include "pairwise/block_scheme.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/triangular.hpp"

namespace pairmr {

BlockScheme::BlockScheme(std::uint64_t v, std::uint64_t blocking_factor)
    : v_(v), h_(blocking_factor) {
  PAIRMR_REQUIRE(v >= 2, "block scheme needs at least two elements");
  PAIRMR_REQUIRE(h_ >= 1 && h_ <= v, "blocking factor must be in [1, v]");
  e_ = ceil_div(v_, h_);
}

std::uint64_t BlockScheme::num_tasks() const { return triangular(h_); }

BlockScheme::IdRange BlockScheme::stripe(std::uint64_t coord) const {
  PAIRMR_REQUIRE(coord >= 1 && coord <= h_, "block coordinate out of range");
  IdRange r;
  r.begin = (coord - 1) * e_;
  r.end = std::min(coord * e_, v_);
  if (r.begin > r.end) r.begin = r.end;  // fully past the dataset
  return r;
}

std::vector<TaskId> BlockScheme::subsets_of(ElementId id) const {
  PAIRMR_REQUIRE(id < v_, "element id out of range");
  const std::uint64_t T = id / e_ + 1;  // 1-based stripe of this element
  std::vector<TaskId> out;
  out.reserve(h_);
  // As the row stripe: blocks (I, J=T) for I >= T — skip blocks whose
  // column stripe holds no elements (possible when e·h > v + e).
  // As the column stripe: blocks (I=T, J) for J < T (always populated).
  for (std::uint64_t J = 1; J < T; ++J) {
    out.push_back(block_label(T, J) - 1);
  }
  out.push_back(block_label(T, T) - 1);  // diagonal block, always kept
  for (std::uint64_t I = T + 1; I <= h_; ++I) {
    if (!stripe(I).empty()) out.push_back(block_label(I, T) - 1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ElementPair> BlockScheme::pairs_in(TaskId task) const {
  PAIRMR_REQUIRE(task < num_tasks(), "task id out of range");
  const BlockIndex b = label_to_block(task + 1);
  const IdRange cols = stripe(b.I);
  const IdRange rows = stripe(b.J);
  std::vector<ElementPair> out;
  if (b.I == b.J) {
    // Diagonal block: upper triangle within the stripe.
    for (ElementId hi = rows.begin + 1; hi < rows.end; ++hi) {
      for (ElementId lo = rows.begin; lo < hi; ++lo) {
        out.push_back(ElementPair{lo, hi});
      }
    }
  } else {
    // Off-diagonal: full cross product; row ids precede column ids
    // because J < I, so (row, col) is already canonical.
    out.reserve(rows.size() * cols.size());
    for (ElementId lo = rows.begin; lo < rows.end; ++lo) {
      for (ElementId hi = cols.begin; hi < cols.end; ++hi) {
        out.push_back(ElementPair{lo, hi});
      }
    }
  }
  return out;
}

std::uint64_t BlockScheme::total_pairs() const { return pair_count(v_); }

std::vector<ElementId> BlockScheme::working_set(TaskId task) const {
  PAIRMR_REQUIRE(task < num_tasks(), "task id out of range");
  const BlockIndex b = label_to_block(task + 1);
  const IdRange cols = stripe(b.I);
  const IdRange rows = stripe(b.J);
  // A block with an empty stripe has no pairs; subsets_of ships nothing
  // to it, so its working set is empty too (the views must agree).
  if (b.I != b.J && (cols.empty() || rows.empty())) return {};
  std::vector<ElementId> out;
  for (ElementId id = rows.begin; id < rows.end; ++id) out.push_back(id);
  if (b.I != b.J) {
    for (ElementId id = cols.begin; id < cols.end; ++id) out.push_back(id);
  }
  return out;
}

SchemeMetrics BlockScheme::metrics() const {
  SchemeMetrics m;
  m.scheme = name();
  m.num_tasks = num_tasks();
  // Table 1, block column.
  m.communication_elements =
      2.0 * static_cast<double>(v_) * static_cast<double>(h_);
  m.replication_factor = static_cast<double>(h_);
  m.working_set_elements = 2.0 * static_cast<double>(e_);
  m.evaluations_per_task = static_cast<double>(e_) * static_cast<double>(e_);
  return m;
}

}  // namespace pairmr
