#include "pairwise/pipeline.hpp"

#include <utility>

#include "pairwise/runner.hpp"

namespace pairmr {

const char* to_string(SimilarityKernel kernel) {
  switch (kernel) {
    case SimilarityKernel::kJaccardTokenSet:
      return "jaccard-token-set";
    case SimilarityKernel::kCosineVector:
      return "cosine-vector";
    case SimilarityKernel::kEuclideanVector:
      return "euclidean-vector";
  }
  return "unknown";
}

const char* to_string(CandidateFilter filter) {
  switch (filter) {
    case CandidateFilter::kPrefix:
      return "prefix";
    case CandidateFilter::kLshBanding:
      return "lsh-banding";
  }
  return "unknown";
}

PairEvaluator::PairEvaluator(const PairwiseJob& job,
                             const std::vector<Element>& elems)
    : job_(job), elems_(elems) {
  if (job_.prepared) {
    handles_.reserve(elems_.size());
    for (const Element& e : elems_) {
      handles_.push_back(job_.prepared.prepare(e));
    }
  }
}

std::string PairEvaluator::invoke(std::size_t a, std::size_t b) const {
  if (!handles_.empty()) {
    return job_.prepared.compare(handles_[a].get(), handles_[b].get());
  }
  return job_.compute(elems_[a], elems_[b]);
}

void PairEvaluator::evaluate(std::size_t lo, std::size_t hi,
                             std::vector<ResultEntry>& lo_acc,
                             std::vector<ResultEntry>& hi_acc) {
  const Element& le = elems_[lo];
  const Element& he = elems_[hi];
  if (job_.symmetry == Symmetry::kSymmetric) {
    std::string result = invoke(lo, hi);
    ++evaluations_;
    if (!job_.keep || job_.keep(le, he, result)) {
      lo_acc.push_back(ResultEntry{he.id, result});
      hi_acc.push_back(ResultEntry{le.id, std::move(result)});
      ++kept_;
    }
  } else {
    std::string forward = invoke(lo, hi);
    ++evaluations_;
    if (!job_.keep || job_.keep(le, he, forward)) {
      lo_acc.push_back(ResultEntry{he.id, std::move(forward)});
      ++kept_;
    }
    std::string backward = invoke(hi, lo);
    ++evaluations_;
    if (!job_.keep || job_.keep(he, le, backward)) {
      hi_acc.push_back(ResultEntry{le.id, std::move(backward)});
      ++kept_;
    }
  }
}

// ---------------------------------------------------------------------
// Deprecated free functions: thin wrappers over PairwiseRunner that
// translate the unified RunReport back into the historical stats structs.
// The drivers themselves live in runner.cpp.
// ---------------------------------------------------------------------

PairwiseRunStats run_pairwise(mr::Cluster& cluster,
                              const std::vector<std::string>& input_paths,
                              const DistributionScheme& scheme,
                              const PairwiseJob& job,
                              const PairwiseOptions& options) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kTwoJob;
  spec.scheme = borrow_scheme(scheme);
  spec.job = job;
  spec.options = options;
  RunReport report = PairwiseRunner(cluster).run(spec);

  PairwiseRunStats stats;
  stats.distribute_job = std::move(report.compute_jobs.front());
  if (!report.merge_jobs.empty()) {
    stats.aggregate_job = std::move(report.merge_jobs.front());
  }
  stats.aggregated = report.aggregated;
  stats.evaluations = report.evaluations;
  stats.results_kept = report.results_kept;
  stats.replication_factor = report.replication_factor;
  stats.max_working_set_records = report.max_working_set_records;
  stats.max_working_set_bytes = report.max_working_set_bytes;
  stats.intermediate_bytes = report.intermediate_bytes;
  stats.shuffle_remote_bytes = report.shuffle_remote_bytes;
  stats.cache_broadcast_bytes = report.cache_broadcast_bytes;
  stats.output_dir = std::move(report.output_dir);
  return stats;
}

PairwiseRunStats run_pairwise_broadcast(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    std::uint64_t v, std::uint64_t num_tasks, const PairwiseJob& job,
    const PairwiseOptions& options) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kBroadcast;
  spec.broadcast = BroadcastTarget{.v = v, .num_tasks = num_tasks};
  spec.job = job;
  spec.options = options;
  RunReport report = PairwiseRunner(cluster).run(spec);

  PairwiseRunStats stats;
  stats.distribute_job = std::move(report.compute_jobs.front());
  stats.aggregated = report.aggregated;
  stats.evaluations = report.evaluations;
  stats.results_kept = report.results_kept;
  stats.replication_factor = report.replication_factor;
  stats.max_working_set_records = report.max_working_set_records;
  stats.max_working_set_bytes = report.max_working_set_bytes;
  stats.intermediate_bytes = report.intermediate_bytes;
  stats.shuffle_remote_bytes = report.shuffle_remote_bytes;
  stats.cache_broadcast_bytes = report.cache_broadcast_bytes;
  stats.output_dir = std::move(report.output_dir);
  return stats;
}

HierarchicalRunStats run_pairwise_rounds(
    mr::Cluster& cluster, const std::vector<std::string>& input_paths,
    const DistributionScheme& scheme,
    const std::vector<std::vector<TaskId>>& rounds, const PairwiseJob& job,
    const PairwiseOptions& options) {
  RunSpec spec;
  spec.input_paths = input_paths;
  spec.mode = RunMode::kRounds;
  spec.scheme = borrow_scheme(scheme);
  spec.rounds = rounds;
  spec.job = job;
  spec.options = options;
  RunReport report = PairwiseRunner(cluster).run(spec);

  HierarchicalRunStats stats;
  stats.round_jobs = std::move(report.compute_jobs);
  stats.merge_jobs = std::move(report.merge_jobs);
  stats.evaluations = report.evaluations;
  stats.results_kept = report.results_kept;
  stats.peak_intermediate_bytes = report.intermediate_bytes;
  stats.max_working_set_records = report.max_working_set_records;
  stats.max_working_set_bytes = report.max_working_set_bytes;
  stats.shuffle_remote_bytes = report.shuffle_remote_bytes;
  stats.output_dir = std::move(report.output_dir);
  return stats;
}

}  // namespace pairmr
