// DistributionScheme: the paper's (D, P) construction interface.
//
// A scheme partitions the Cartesian product S×S (upper triangle) into
// per-task pair relations. The MR pipeline calls `subsets_of` from the
// first job's map function (the paper's getSubsets) and `pairs_in` from
// its reduce function (getPairs). The required invariant — every unordered
// pair covered exactly once across tasks — is property-tested for each
// implementation.
//
// Element ids are dense 0-based (paper's s_{i+1} == id i); task ids are
// dense 0-based working-set indices.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pairwise/element.hpp"

namespace pairmr {

using TaskId = std::uint64_t;

// Canonical unordered pair: lo < hi. Matches the paper's (s_i, s_j) with
// i > j under hi = i-1, lo = j-1.
struct ElementPair {
  ElementId lo = 0;
  ElementId hi = 0;

  friend bool operator==(const ElementPair&, const ElementPair&) = default;
  friend auto operator<=>(const ElementPair&, const ElementPair&) = default;
};

// Analytic per-scheme characteristics — one column of the paper's Table 1,
// instantiated for concrete parameters. Communication is measured in
// element transfers (multiply by element size for bytes), matching the
// paper's 2vp / 2vh / 2v√v entries.
struct SchemeMetrics {
  std::string scheme;
  std::uint64_t num_tasks = 0;
  double communication_elements = 0.0;
  double replication_factor = 0.0;
  double working_set_elements = 0.0;  // per task (max)
  double evaluations_per_task = 0.0;  // per task (max)
};

class DistributionScheme {
 public:
  virtual ~DistributionScheme() = default;

  virtual std::string name() const = 0;

  // v — the dataset cardinality the scheme was built for.
  virtual std::uint64_t num_elements() const = 0;

  // b — the number of working sets (the possible degree of parallelism).
  virtual std::uint64_t num_tasks() const = 0;

  // getSubsets: every task whose working set contains `id`.
  // Sorted ascending, no duplicates.
  virtual std::vector<TaskId> subsets_of(ElementId id) const = 0;

  // getPairs: the pair relation P_task. Every pair satisfies
  // {lo, hi} ⊆ D_task. Deterministic order.
  virtual std::vector<ElementPair> pairs_in(TaskId task) const = 0;

  // Streaming form of pairs_in: visits the same pairs in the same order
  // without materializing the vector (broadcast tasks can hold millions
  // of labels). The default delegates to pairs_in; schemes with cheap
  // generators override.
  virtual void for_each_pair(
      TaskId task, const std::function<void(ElementPair)>& fn) const;

  // Analytic Table 1 row for this instance.
  virtual SchemeMetrics metrics() const = 0;

  // Total evaluations across all tasks — must equal C(v,2) for any
  // correct scheme; the default computes it by enumeration (override
  // only as an optimization).
  virtual std::uint64_t total_pairs() const;

  // Working set of one task, derived from subsets_of by default; schemes
  // override with the direct construction.
  virtual std::vector<ElementId> working_set(TaskId task) const;
};

}  // namespace pairmr
