// Dense-id assignment for datasets with arbitrary keys.
//
// The pipeline requires dense element ids 0..v-1 (the schemes' index
// math depends on it), but real datasets carry URLs, document names, or
// sparse numeric keys. `reindex` converts such a dataset with MapReduce
// jobs, mirroring how a production deployment would prepare its input:
//
//   Job 1 ("shard"):   hash-partition records by original key; each
//                      reduce task writes its keys in sorted order and
//                      rejects duplicates. The driver then turns the
//                      per-task record counts into prefix offsets.
//   Job 2 ("assign"):  map-side renumbering — each map task reads one
//                      Job-1 shard, looks up the shard's base offset
//                      (shipped via the distributed cache), and assigns
//                      ids base + position; emits both the dataset
//                      record (id -> payload) and a dictionary record
//                      (id -> original key), separated by a tag.
//   Job 3 ("project"): splits the tagged stream into the dataset
//                      directory and the dictionary directory.
//
// Ids are unique and dense but not globally ordered by key (order within
// a shard is sorted; shards are hash-assigned) — the schemes only need
// density.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "pairwise/element.hpp"

namespace pairmr {

struct ReindexResult {
  std::uint64_t v = 0;  // number of distinct elements
  // Dataset files in pipeline format: (big-endian u64 id, payload).
  std::vector<std::string> dataset_paths;
  // Dictionary files: (big-endian u64 id, original key).
  std::vector<std::string> dictionary_paths;
  mr::JobResult shard_job;
  mr::JobResult assign_job;
};

// `input_paths` hold records (arbitrary unique key, payload). Throws
// PreconditionError on duplicate keys.
ReindexResult reindex(mr::Cluster& cluster,
                      const std::vector<std::string>& input_paths,
                      const std::string& work_dir = "/reindex");

// Load the dictionary into memory (test/example convenience): id -> key.
std::vector<std::string> load_dictionary(const mr::Cluster& cluster,
                                         const ReindexResult& result);

}  // namespace pairmr
