// Unified front door of the pairwise pipeline.
//
// The pipeline historically grew three divergent free functions —
// run_pairwise (two-job, paper §4), run_pairwise_broadcast (one-job,
// §5.1), and run_pairwise_rounds (§7) — each with its own stats struct.
// PairwiseRunner replaces them with one entry point: describe the run in
// a RunSpec (input, scheme or broadcast target or rounds, job, options),
// get one RunReport back, whichever driver executed underneath. The old
// signatures remain in pairwise/pipeline.hpp as thin wrappers over this
// class, so existing callers keep working unchanged.
//
// run_planned closes the planner loop: plan_scheme → make_scheme →
// execute, falling back to the §7 rounds driver when no scheme is
// feasible under the given limits — callers no longer hand-wire planner
// output into pipeline calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/planner.hpp"
#include "pairwise/scheme.hpp"

namespace pairmr {

namespace mr::backend {
class BackendSession;
}  // namespace mr::backend

// Which driver executes the run.
enum class RunMode {
  kTwoJob,     // distribute+compare job, then aggregate job (§4)
  kBroadcast,  // one job, dataset via distributed cache (§5.1)
  kRounds,     // round-based execution with per-round merges (§7)
  // Thresholded similarity join (DESIGN.md §14): a candidate-generation
  // phase (pairwise/candidates.hpp) prunes the pair relation, then the
  // two-job driver runs over RunSpec::scheme restricted to the surviving
  // candidates. The job is synthesized from
  // PairwiseOptions::similarity_join — RunSpec::job must leave
  // compute/prepared/keep unset (finalize is honored).
  kSimilarityJoin,
  // Incremental delta plan (DESIGN.md §16): only the pairs a batch of
  // `RunSpec::delta.delta_v` new elements introduces against
  // `delta.base_v` cached ones are evaluated — the base_v × delta_v
  // cross rectangle (BipartiteBlockScheme tiles) plus the C(delta_v,2)
  // intra-delta triangle. input_paths must cover the whole union
  // (base payloads re-ship through the distribute job; evaluations are
  // what the delta saves). RunSpec::scheme is synthesized internally.
  kDelta,
};

const char* to_string(RunMode mode);

// Broadcast-mode target: the paper's (v, p).
struct BroadcastTarget {
  std::uint64_t v = 0;          // dataset cardinality
  std::uint64_t num_tasks = 0;  // p, freely chosen (Table 1)
};

// Delta-mode target: a batch of delta_v new elements (dense ids
// [base_v, base_v + delta_v)) arriving on top of base_v cached ones
// (ids [0, base_v)).
struct DeltaTarget {
  std::uint64_t base_v = 0;
  std::uint64_t delta_v = 0;
  // Grid of the cross rectangle (BipartiteBlockScheme's ha × hb);
  // 0 = auto: ha = min(cluster nodes, base_v), hb = 1.
  std::uint64_t cross_grid_a = 0;
  std::uint64_t cross_grid_b = 0;
};

// Full description of one pairwise run. Exactly one driver input is
// consulted, selected by `mode`: `scheme` for kTwoJob and
// kSimilarityJoin, `broadcast` for kBroadcast, `scheme` + `rounds` for
// kRounds, `delta` for kDelta. The spec OWNS its scheme: a RunSpec can
// be built, stored, and executed later without keeping the construction
// scope alive (the old borrowed-pointer contract survives only behind
// the deprecated set_scheme shim).
struct RunSpec {
  std::vector<std::string> input_paths;
  RunMode mode = RunMode::kTwoJob;
  std::shared_ptr<const DistributionScheme> scheme;
  BroadcastTarget broadcast;
  DeltaTarget delta;
  std::vector<std::vector<TaskId>> rounds;
  PairwiseJob job;
  PairwiseOptions options;

  // Pre-ownership shim: stores `s` without taking ownership, restoring
  // the "caller keeps it alive past run()" contract of the borrowed-
  // pointer era. Dangles exactly like the raw member did — migrate to
  // an owning shared_ptr (make_scheme returns one) or borrow_scheme.
  [[deprecated(
      "RunSpec owns its scheme now: assign a std::shared_ptr"
      "<const DistributionScheme> (make_scheme returns one), or wrap a "
      "caller-owned scheme with borrow_scheme()")]]
  void set_scheme(const DistributionScheme* s);
};

// Non-owning adapter for a scheme whose lifetime the caller guarantees
// to exceed the run: wraps a reference in a shared_ptr with an empty
// control block. Prefer real shared ownership for anything stored.
std::shared_ptr<const DistributionScheme> borrow_scheme(
    const DistributionScheme& scheme);

// Unified result of any run, merging the old PairwiseRunStats and
// HierarchicalRunStats. Mode-specific structure survives in the job
// lists: kTwoJob → compute_jobs = {distribute}, merge_jobs = {aggregate}
// (when run); kBroadcast → compute_jobs = {the one job}; kRounds →
// compute_jobs = round jobs, merge_jobs = per-round merges.
struct RunReport {
  RunMode mode = RunMode::kTwoJob;
  std::vector<mr::JobResult> compute_jobs;
  std::vector<mr::JobResult> merge_jobs;
  // kSimilarityJoin only: the candidate-generation jobs that ran before
  // the pairwise phase (empty when threshold <= 0 skipped the phase).
  std::vector<mr::JobResult> candidate_jobs;
  bool aggregated = false;

  std::uint64_t evaluations = 0;
  std::uint64_t results_kept = 0;

  // kSimilarityJoin only (counter::kCandidatePairs & friends):
  // candidate == survivor + pruned, all zero in other modes.
  std::uint64_t candidate_pairs = 0;
  std::uint64_t survivor_pairs = 0;
  std::uint64_t pruned_pairs = 0;

  // kDelta only (pairs.delta / pairs.reused): pairs this run evaluated
  // (base_v·delta_v + C(delta_v,2)) and pairs whose cached results the
  // caller keeps (C(base_v,2)). Invariant, asserted by the driver:
  // pairs_delta + pairs_reused == C(base_v + delta_v, 2) — the delta
  // plan tiles the union's pair set exactly once. Zero in other modes.
  std::uint64_t pairs_delta = 0;
  std::uint64_t pairs_reused = 0;

  // Measured counterparts of Table 1's metrics.
  double replication_factor = 0.0;
  std::uint64_t max_working_set_records = 0;
  std::uint64_t max_working_set_bytes = 0;
  // Largest volume materialized between jobs at any one time (the rounds
  // driver's value is the peak across rounds, its §7 selling point).
  std::uint64_t intermediate_bytes = 0;
  std::uint64_t shuffle_remote_bytes = 0;
  std::uint64_t cache_broadcast_bytes = 0;

  // Memory-budget metering (mr/spill.hpp), summed over every job the run
  // executed; all zero when PairwiseOptions::memory_budget is disabled.
  std::uint64_t spill_runs = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t merge_passes = 0;
  std::uint64_t max_tracked_bytes = 0;  // peak task buffer, max over jobs

  // Backend provenance: which shuffle plane the run's jobs resolved to
  // (kSocket unless the fork backend ran with kShm), and the fork
  // backend's worker-pool tallies — forked counts real fork() calls,
  // reused counts jobs served by an already-warm pool worker. Both stay
  // zero on the in-process backend. A multi-job run on a persistent pool
  // shows workers_forked < jobs_run * nodes with workers_reused > 0.
  mr::ShufflePlane shuffle_plane = mr::ShufflePlane::kSocket;
  std::uint64_t workers_forked = 0;
  std::uint64_t workers_reused = 0;

  std::string output_dir;  // final element files (Figure 2 layout)

  // run_planned provenance (default-constructed otherwise).
  bool planned = false;
  Plan plan;
  bool fell_back_to_rounds = false;

  // Counter totals across every executed job: names containing ".max."
  // merge with max (the engine's peak counters), everything else sums.
  std::uint64_t counter(const std::string& name) const;
};

// Up-front structural validation of a run's options against the cluster,
// with actionable messages (instead of a failure deep inside the engine).
// run() calls this before executing; throws PreconditionError. `mode`
// selects the mode-specific checks: kSimilarityJoin additionally rejects
// a similarity threshold outside [0, 1] (or NaN) and a non-set kernel —
// the candidate filters are set-overlap bounds and silently produce
// wrong prunes for vector kernels.
void validate_pairwise_options(const mr::Cluster& cluster,
                               const PairwiseOptions& options,
                               RunMode mode = RunMode::kTwoJob);

class PairwiseRunner {
 public:
  // The cluster is borrowed and must outlive the runner.
  explicit PairwiseRunner(mr::Cluster& cluster) : cluster_(cluster) {}

  // Execute `spec` with the driver its mode selects. Creates a fresh
  // BackendSession per call (one fork-pool epoch per run).
  RunReport run(const RunSpec& spec);

  // Same, but over a caller-owned BackendSession, so consecutive runs
  // (a PairwiseSession's submit/update stream) share one persistent
  // fork pool. The report's workers_forked/reused carry the session's
  // lifetime tallies, not this run's alone.
  RunReport run(const RunSpec& spec, mr::backend::BackendSession& session);

  // Plan under `request.limits`, instantiate the chosen scheme, and
  // execute it: broadcast plans run the one-job driver, block/design
  // plans the two-job driver. When no scheme is feasible, falls back to
  // §7 rounds over a design scheme, chunked into `request.num_nodes`
  // tasks per round (intermediate storage shrinks with the chunk size).
  // The report carries the plan and the fallback decision.
  RunReport run_planned(
      const PlanRequest& request,
      const std::vector<std::string>& input_paths, const PairwiseJob& job,
      const PairwiseOptions& options = {},
      PlaneConstruction construction = PlaneConstruction::kTheorem2Prime);

 private:
  mr::Cluster& cluster_;
};

}  // namespace pairmr
