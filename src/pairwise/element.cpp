#include "pairwise/element.hpp"

#include "common/serde.hpp"

namespace pairmr {

std::string encode_element(const Element& e) {
  BufWriter w;
  w.reserve(encoded_element_size(e));
  w.put_u64(e.id);
  w.put_bytes(e.payload);
  w.put_u32(static_cast<std::uint32_t>(e.results.size()));
  for (const auto& r : e.results) {
    w.put_u64(r.other);
    w.put_bytes(r.result);
  }
  return std::move(w).str();
}

Element decode_element(std::string_view bytes) {
  BufReader r(bytes);
  Element e;
  e.id = r.get_u64();
  e.payload = std::string(r.get_bytes());
  const std::uint32_t n = r.get_u32();
  e.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ResultEntry entry;
    entry.other = r.get_u64();
    entry.result = std::string(r.get_bytes());
    e.results.push_back(std::move(entry));
  }
  return e;
}

std::uint64_t encoded_element_size(const Element& e) {
  std::uint64_t size = 8 + 4 + e.payload.size() + 4;
  for (const auto& r : e.results) size += 8 + 4 + r.result.size();
  return size;
}

}  // namespace pairmr
