#include "pairwise/hierarchical.hpp"

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/triangular.hpp"

namespace pairmr {

std::vector<std::vector<TaskId>> coarse_block_rounds(
    const BlockScheme& fine, std::uint64_t coarse_h) {
  const std::uint64_t h = fine.blocking_factor();
  PAIRMR_REQUIRE(coarse_h >= 1 && coarse_h <= h,
                 "coarse factor must be in [1, h]");
  PAIRMR_REQUIRE(h % coarse_h == 0,
                 "coarse factor must divide the fine blocking factor");
  const std::uint64_t f = h / coarse_h;  // fine blocks per coarse edge

  std::vector<std::vector<TaskId>> rounds(triangular(coarse_h));
  for (TaskId task = 0; task < fine.num_tasks(); ++task) {
    const BlockIndex b = label_to_block(task + 1);
    // Fine coordinates (I, J) lie inside coarse block (⌈I/f⌉, ⌈J/f⌉).
    const std::uint64_t ci = ceil_div(b.I, f);
    const std::uint64_t cj = ceil_div(b.J, f);
    PAIRMR_CHECK(cj <= ci, "coarse coordinates left the upper triangle");
    rounds[block_label(ci, cj) - 1].push_back(task);
  }
  return rounds;
}

std::vector<std::vector<TaskId>> chunked_rounds(
    const DistributionScheme& scheme, std::uint64_t tasks_per_round) {
  PAIRMR_REQUIRE(tasks_per_round >= 1, "tasks_per_round must be positive");
  std::vector<std::vector<TaskId>> rounds;
  std::vector<TaskId> current;
  for (TaskId task = 0; task < scheme.num_tasks(); ++task) {
    current.push_back(task);
    if (current.size() == tasks_per_round) {
      rounds.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) rounds.push_back(std::move(current));
  return rounds;
}

}  // namespace pairmr
