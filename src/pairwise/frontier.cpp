#include "pairwise/frontier.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/cyclic_design_scheme.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/hierarchical.hpp"
#include "pairwise/quorum_scheme.hpp"

namespace pairmr {

FrontierPoint frontier_point(const DistributionScheme& scheme,
                             std::string params, std::string label) {
  FrontierPoint p;
  p.scheme = label.empty() ? scheme.name() : std::move(label);
  p.params = std::move(params);
  p.v = scheme.num_elements();
  p.num_tasks = scheme.num_tasks();

  std::uint64_t copies = 0;
  for (TaskId t = 0; t < p.num_tasks; ++t) {
    const std::uint64_t size = scheme.working_set(t).size();
    copies += size;
    p.reducer_size = std::max(p.reducer_size, size);
  }
  // The same copies counted element-side: each element lands in
  // |subsets_of(e)| working sets. Disagreement means the scheme's two
  // views of membership have diverged.
  std::uint64_t fan_out = 0;
  for (ElementId e = 0; e < p.v; ++e) {
    fan_out += scheme.subsets_of(e).size();
  }
  PAIRMR_CHECK(fan_out == copies,
               "subsets_of and working_set disagree on total element copies");

  PAIRMR_REQUIRE(p.v >= 1, "frontier needs a non-empty dataset");
  p.replication_rate =
      static_cast<double>(copies) / static_cast<double>(p.v);
  if (p.v >= 2 && p.reducer_size >= 2) {
    p.lower_bound = static_cast<double>(p.v - 1) /
                    static_cast<double>(p.reducer_size - 1);
  }
  p.ratio = p.lower_bound > 0.0 ? p.replication_rate / p.lower_bound : 0.0;
  // Fp tolerance only; the inequality itself is exact for correct schemes.
  p.ok = p.replication_rate + 1e-9 >= p.lower_bound;
  return p;
}

std::vector<FrontierPoint> frontier_sweep(
    const std::vector<std::uint64_t>& sizes) {
  std::vector<FrontierPoint> out;
  for (const std::uint64_t v : sizes) {
    PAIRMR_REQUIRE(v >= 16, "frontier sweep sizes must be >= 16");

    {
      const BroadcastScheme s(v, 8);
      out.push_back(frontier_point(s, "p=8"));
    }

    std::vector<std::uint64_t> factors{4};
    if (isqrt(v) != 4) factors.push_back(isqrt(v));
    for (const std::uint64_t h : factors) {
      const BlockScheme s(v, h);
      out.push_back(frontier_point(s, "h=" + std::to_string(h)));
    }

    {
      const QuorumScheme s(v);
      out.push_back(frontier_point(
          s, "|D|=" + std::to_string(s.cover().size())));
    }

    {
      const DesignScheme s(v);
      out.push_back(frontier_point(s, "theorem2-prime"));
    }

    if (v <= 1681) {  // cyclic construction needs q^3 <= 2^16
      const CyclicDesignScheme s(v);
      out.push_back(frontier_point(
          s, "q=" + std::to_string(s.plane_order())));
    }

    {
      // Hierarchical (§7): the same fine blocks, grouped into coarse
      // rounds — the grouping is temporal, so q and r match the flat
      // block scheme and the point lands on the identical spot.
      const BlockScheme fine(v, 8);
      const auto rounds = coarse_block_rounds(fine, 2);
      out.push_back(frontier_point(
          fine, "H=2 f=4 rounds=" + std::to_string(rounds.size()),
          "hierarchical"));
    }
  }
  return out;
}

std::string frontier_to_json(const std::vector<FrontierPoint>& points) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"frontier\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& p = points[i];
    os << "    {\"scheme\": \"" << p.scheme << "\", \"params\": \""
       << p.params << "\", \"v\": " << p.v
       << ", \"num_tasks\": " << p.num_tasks
       << ", \"reducer_size\": " << p.reducer_size
       << ", \"replication_rate\": " << p.replication_rate
       << ", \"lower_bound\": " << p.lower_bound
       << ", \"ratio\": " << p.ratio
       << ", \"ok\": " << (p.ok ? "true" : "false") << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passed\": " << (frontier_all_ok(points) ? "true" : "false")
     << "\n}\n";
  return os.str();
}

bool frontier_all_ok(const std::vector<FrontierPoint>& points) {
  return std::all_of(points.begin(), points.end(),
                     [](const FrontierPoint& p) { return p.ok; });
}

}  // namespace pairmr
