// Analytic makespan model: estimated end-to-end execution time of a
// pairwise job per scheme, on the paper's execution model (§3).
//
// The paper's Table 1 compares schemes metric-by-metric but leaves "which
// scheme finishes first" implicit. This model combines the metrics into
// one number using three environment rates:
//   * compute_seconds_per_eval   — cost of one comp() call;
//   * network_seconds_per_byte   — inverse aggregate bandwidth;
//   * task_overhead_seconds      — fixed scheduling cost per task.
// Phases are assumed non-overlapping (tasks run on local data only after
// shipping completes — the §3 model has no online communication):
//   makespan ≈ ship + max-wave compute + aggregate ship
// with `ceil(tasks / n)` compute waves of the per-task evaluation cost.
//
// It predicts the §5.1 folklore: with expensive comp() and a dataset that
// fits memory, broadcast (p = n, replication n) wins; with cheap comp()
// and big data, block's minimal replication wins; design pays its √v
// replication for the smallest working sets.
#pragma once

#include <cstdint>
#include <string>

#include "pairwise/scheme.hpp"

namespace pairmr {

struct CostRates {
  double compute_seconds_per_eval = 1e-6;
  double network_seconds_per_byte = 1e-8;  // ~100 MB/s aggregate
  double task_overhead_seconds = 0.05;
};

struct MakespanBreakdown {
  std::string scheme;
  double ship_seconds = 0.0;       // replicated-data distribution
  double compute_seconds = 0.0;    // eval waves
  double aggregate_seconds = 0.0;  // result collection pass
  double overhead_seconds = 0.0;   // per-task fixed costs
  double total() const {
    return ship_seconds + compute_seconds + aggregate_seconds +
           overhead_seconds;
  }
};

// Estimate from a scheme's Table 1 metrics. `element_bytes` is s, `n` the
// node count, `result_bytes` the per-pair result size (paper §3: 16 B for
// id + value).
MakespanBreakdown estimate_makespan(const SchemeMetrics& metrics,
                                    std::uint64_t v,
                                    std::uint64_t element_bytes,
                                    std::uint64_t n,
                                    const CostRates& rates,
                                    std::uint64_t result_bytes = 16);

// Convenience comparisons over the three schemes with default parameter
// choices (broadcast p = n; block h = smallest valid for >= n tasks given
// no limits; design q from v).
struct SchemeComparison {
  MakespanBreakdown broadcast;
  MakespanBreakdown block;
  MakespanBreakdown design;
  std::string winner;  // scheme with the smallest total
};

SchemeComparison compare_makespans(std::uint64_t v,
                                   std::uint64_t element_bytes,
                                   std::uint64_t n, std::uint64_t block_h,
                                   const CostRates& rates);

}  // namespace pairmr
