#include "pairwise/filtered_scheme.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pairmr {

FilteredScheme::FilteredScheme(const DistributionScheme& base,
                               std::vector<TaskId> active)
    : base_(base), active_(std::move(active)) {
  for (const TaskId t : active_) {
    PAIRMR_REQUIRE(t < base_.num_tasks(), "filtered task id out of range");
    const bool inserted = active_set_.insert(t).second;
    PAIRMR_REQUIRE(inserted, "duplicate task id in filter");
  }
  std::sort(active_.begin(), active_.end());
}

std::vector<TaskId> FilteredScheme::subsets_of(ElementId id) const {
  std::vector<TaskId> tasks = base_.subsets_of(id);
  tasks.erase(std::remove_if(tasks.begin(), tasks.end(),
                             [this](TaskId t) {
                               return !active_set_.contains(t);
                             }),
              tasks.end());
  return tasks;
}

std::vector<ElementPair> FilteredScheme::pairs_in(TaskId task) const {
  if (!active_set_.contains(task)) return {};
  return base_.pairs_in(task);
}

std::vector<ElementId> FilteredScheme::working_set(TaskId task) const {
  if (!active_set_.contains(task)) return {};
  return base_.working_set(task);
}

}  // namespace pairmr
