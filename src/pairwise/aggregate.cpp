#include "pairwise/aggregate.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mr/context.hpp"

namespace pairmr {

Element merge_copies(std::vector<Element> copies) {
  PAIRMR_REQUIRE(!copies.empty(), "cannot merge zero copies");
  Element merged;
  merged.id = copies.front().id;
  std::size_t total = 0;
  for (const auto& c : copies) {
    PAIRMR_CHECK(c.id == merged.id, "mixed element ids in one merge group");
    total += c.results.size();
    if (merged.payload.empty() && !c.payload.empty()) {
      merged.payload = c.payload;
    }
  }
  merged.results.reserve(total);
  for (auto& c : copies) {
    std::move(c.results.begin(), c.results.end(),
              std::back_inserter(merged.results));
  }
  std::sort(merged.results.begin(), merged.results.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              return a.other < b.other;
            });
  for (std::size_t i = 1; i < merged.results.size(); ++i) {
    PAIRMR_CHECK(merged.results[i - 1].other != merged.results[i].other,
                 "pair evaluated more than once (duplicate partner id " +
                     std::to_string(merged.results[i].other) + ")");
  }
  return merged;
}

void AggregateReducer::reduce(const mr::Bytes& key,
                              const std::vector<mr::Bytes>& values,
                              mr::ReduceContext& ctx) {
  std::vector<Element> copies;
  copies.reserve(values.size());
  for (const auto& v : values) copies.push_back(decode_element(v));
  Element merged = merge_copies(std::move(copies));
  if (finalize_) finalize_(merged);
  ctx.emit(key, encode_element(merged));
}

}  // namespace pairmr
