// Block distribution scheme (paper §5.2).
//
// The upper triangle of the v×v pair matrix is tiled into h(h+1)/2
// rectangular blocks of edge e = ⌈v/h⌉ (Figure 6). Task p owns block
// (I(p), J(p)) and the working set D_p = R_p ∪ C_p — the row-range and
// column-range elements of that block; its pair relation is the full
// cross product (triangle for diagonal blocks).
//
// The blocking factor h is the scheme's tuning knob: it trades working-set
// size (2⌈v/h⌉ elements) against replication (each element lands in h
// working sets) — the basis of the paper's Figure 9a feasibility analysis.
#pragma once

#include <cstdint>

#include "pairwise/scheme.hpp"

namespace pairmr {

class BlockScheme final : public DistributionScheme {
 public:
  // v >= 2 elements, blocking factor h in [1, v].
  BlockScheme(std::uint64_t v, std::uint64_t blocking_factor);

  std::string name() const override { return "block"; }
  std::uint64_t num_elements() const override { return v_; }
  std::uint64_t num_tasks() const override;

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  std::uint64_t blocking_factor() const { return h_; }
  std::uint64_t edge() const { return e_; }

  // Half-open element-id range of 1-based block coordinate c: the
  // elements contributed by row (or column) stripe c.
  struct IdRange {
    ElementId begin = 0;
    ElementId end = 0;  // exclusive
    std::uint64_t size() const { return end - begin; }
    bool empty() const { return begin >= end; }
  };
  IdRange stripe(std::uint64_t coord) const;

 private:
  std::uint64_t v_;
  std::uint64_t h_;
  std::uint64_t e_;  // block edge length, ceil(v/h)
};

}  // namespace pairmr
