// Aggregation of element copies (paper Algorithm 2's aggregateResults).
#pragma once

#include <vector>

#include "pairwise/element.hpp"

namespace pairmr {

// Merge all copies of one element: payload taken from the first copy
// carrying one, result lists concatenated and sorted by partner id.
// Checks the exactly-once invariant: a duplicate partner id means some
// pair was evaluated twice (a scheme bug) — throws InternalError.
Element merge_copies(std::vector<Element> copies);

}  // namespace pairmr
