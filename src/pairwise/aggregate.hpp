// Aggregation of element copies (paper Algorithm 2's aggregateResults).
#pragma once

#include <vector>

#include "mr/job.hpp"
#include "pairwise/element.hpp"
#include "pairwise/pipeline.hpp"

namespace pairmr {

// Merge all copies of one element: payload taken from the first copy
// carrying one, result lists concatenated and sorted by partner id.
// Checks the exactly-once invariant: a duplicate partner id means some
// pair was evaluated twice (a scheme bug) — throws InternalError.
Element merge_copies(std::vector<Element> copies);

// Job 2's reducer (and, without a finalize, its combiner): groups every
// encoded copy of an element and emits the merge_copies result. Public
// because the runner's aggregate job and PairwiseSession's incremental
// merge job (old state + delta intermediate) are the same reduction —
// which is what makes the session's state byte-identical to a batch
// run's output.
class AggregateReducer final : public mr::Reducer {
 public:
  // `finalize` runs once per fully merged element (may be null). Held by
  // reference — the caller keeps it alive for the job's duration.
  explicit AggregateReducer(const FinalizeFn& finalize)
      : finalize_(finalize) {}

  void reduce(const mr::Bytes& key, const std::vector<mr::Bytes>& values,
              mr::ReduceContext& ctx) override;

 private:
  const FinalizeFn& finalize_;
};

}  // namespace pairmr
