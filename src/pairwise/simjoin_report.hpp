// BENCH_simjoin.json data model: pruned-vs-exhaustive throughput across
// similarity thresholds. Shared by bench/bench_simjoin (which emits the
// document) and tests/pairwise/simjoin_schema_test.cpp (schema + golden),
// in the BENCH_frontier.json idiom (pairwise/frontier.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pairmr {

struct SimjoinPoint {
  std::string filter;  // "prefix" | "lsh-banding"
  double threshold = 0.0;
  std::uint64_t v = 0;
  std::uint64_t total_pairs = 0;      // C(v,2)
  std::uint64_t candidate_pairs = 0;  // pairs.candidate
  std::uint64_t survivor_pairs = 0;   // pairs.survivor
  std::uint64_t pruned_pairs = 0;     // pairs.pruned
  double exhaustive_seconds = 0.0;
  double join_seconds = 0.0;
  double exhaustive_pairs_per_s = 0.0;  // C(v,2) / exhaustive_seconds
  double join_pairs_per_s = 0.0;        // C(v,2) / join_seconds
  double speedup = 0.0;                 // exhaustive_seconds / join_seconds
  bool identical = false;  // join output byte-identical to exhaustive ref
};

// {"bench": "simjoin", "points": [...], "passed": bool}; `passed` is
// simjoin_all_ok.
std::string simjoin_to_json(const std::vector<SimjoinPoint>& points);

// Every point's output matched its exhaustive reference and the counter
// invariant candidate == survivor + pruned held.
bool simjoin_all_ok(const std::vector<SimjoinPoint>& points);

}  // namespace pairmr
