// Umbrella header: the full public API of the pairmr library.
//
//   #include "pairwise/pairmr.hpp"
//
// Layers, bottom-up:
//   mr/        — simulated MapReduce substrate (Cluster, Engine, JobSpec)
//   design/    — combinatorial designs (projective planes over GF(q))
//   pairwise/  — distribution schemes, cost model, planner, MR pipeline
#pragma once

#include "mr/cluster.hpp"
#include "mr/engine.hpp"
#include "pairwise/aggregate.hpp"
#include "pairwise/bipartite_scheme.hpp"
#include "pairwise/block_scheme.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/cyclic_design_scheme.hpp"
#include "pairwise/dataset.hpp"
#include "pairwise/design_scheme.hpp"
#include "pairwise/element.hpp"
#include "pairwise/filtered_scheme.hpp"
#include "pairwise/hierarchical.hpp"
#include "pairwise/makespan.hpp"
#include "pairwise/pipeline.hpp"
#include "pairwise/planner.hpp"
#include "pairwise/reindex.hpp"
#include "pairwise/runner.hpp"
#include "pairwise/scheme.hpp"
#include "pairwise/session.hpp"
#include "pairwise/simple.hpp"
#include "pairwise/triangular.hpp"
