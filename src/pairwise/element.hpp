// Element model and wire codec.
//
// An element is an opaque payload with a unique dense id (0-based; the
// paper's s_1..s_v map to ids 0..v-1). After the pairwise computation an
// element additionally carries the list of (other-id, result) entries —
// the storage organization of the paper's Figure 2.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pairmr {

using ElementId = std::uint64_t;

// One evaluation result attached to an element: comp(this, other).
struct ResultEntry {
  ElementId other = 0;
  std::string result;  // opaque bytes produced by the compute function

  friend bool operator==(const ResultEntry&, const ResultEntry&) = default;
};

struct Element {
  ElementId id = 0;
  std::string payload;
  std::vector<ResultEntry> results;

  friend bool operator==(const Element&, const Element&) = default;
};

// Binary codec used for MR values. Layout: id, payload, result entries.
std::string encode_element(const Element& e);
Element decode_element(std::string_view bytes);

// Serialized size without materializing (for metering).
std::uint64_t encoded_element_size(const Element& e);

}  // namespace pairmr
