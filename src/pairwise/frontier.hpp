// Replication-rate frontier: where each distribution scheme sits in the
// (reducer size q, replication rate r) plane relative to the
// Afrati/Ullman lower bound for all-pairs computation.
//
// Every unordered pair must meet inside at least one working set. A
// working set of q_i elements covers at most q_i(q_i-1)/2 pairs, so with
// all working sets bounded by q:
//     sum_i q_i(q_i-1)/2 >= v(v-1)/2   =>   r = (sum_i q_i)/v >= (v-1)/(q-1).
// A point is on the frontier when its measured r equals that bound; any
// correct scheme must sit on or above it. Broadcast (q = v, r = p),
// block (q = 2⌈v/h⌉, r = h), design/cyclic-design (q ≈ √v, r ≈ √v) and
// quorum (q = |D|, r = |D|) trade q against r along this curve;
// hierarchical rounds regroup tasks in time and leave (q, r) untouched.
//
// The measurement is executable, not analytic: q and r are enumerated
// from working_set() over every task, cross-checked against the
// per-element fan-out of subsets_of(). Shared by bench/bench_frontier
// (which emits BENCH_frontier.json) and the schema/golden test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pairwise/scheme.hpp"

namespace pairmr {

struct FrontierPoint {
  std::string scheme;            // scheme label ("quorum", "hierarchical", ...)
  std::string params;            // human-readable parameters ("p=8", "h=4")
  std::uint64_t v = 0;
  std::uint64_t num_tasks = 0;
  std::uint64_t reducer_size = 0;  // q: max working-set elements over tasks
  double replication_rate = 0.0;   // r: sum of working-set sizes / v
  double lower_bound = 0.0;        // (v-1)/(q-1); 0 when q < 2
  double ratio = 0.0;              // r / lower_bound; 0 when bound is 0
  bool ok = false;                 // r >= lower_bound (fp tolerance)
};

// Enumerate one scheme instance into a frontier point. `label` overrides
// scheme.name() (used to tag the hierarchical grouping of a block
// scheme); empty keeps the scheme's own name. PAIRMR_CHECKs that the
// total element copies counted task-side (working_set) and element-side
// (subsets_of) agree.
FrontierPoint frontier_point(const DistributionScheme& scheme,
                             std::string params = "",
                             std::string label = "");

// The bench sweep: for each v, broadcast (p=8), block (h=4 and h=⌊√v⌋),
// quorum, design, cyclic-design (only where v <= 1681 admits it), and a
// hierarchical point (block h=8 grouped into coarse rounds). Every size
// must be >= 16.
std::vector<FrontierPoint> frontier_sweep(
    const std::vector<std::uint64_t>& sizes);

// JSON document in the BENCH_hotpath.json idiom:
// {"bench": "frontier", "points": [...], "passed": bool}.
std::string frontier_to_json(const std::vector<FrontierPoint>& points);

bool frontier_all_ok(const std::vector<FrontierPoint>& points);

}  // namespace pairmr
