#include "pairwise/dataset.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace pairmr {

std::vector<mr::Record> to_dataset_records(
    const std::vector<std::string>& payloads, ElementId first_id) {
  std::vector<mr::Record> records;
  records.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    records.push_back(mr::Record{encode_u64_key(first_id + i), payloads[i]});
  }
  return records;
}

std::vector<std::string> write_dataset(
    mr::Cluster& cluster, const std::string& dir,
    const std::vector<std::string>& payloads, ElementId first_id) {
  return cluster.scatter_records(dir, to_dataset_records(payloads, first_id));
}

std::vector<Element> read_elements(const mr::Cluster& cluster,
                                   const std::string& prefix) {
  std::vector<Element> out;
  for (const auto& rec : cluster.gather_records(prefix)) {
    out.push_back(decode_element(rec.value));
  }
  std::sort(out.begin(), out.end(),
            [](const Element& a, const Element& b) { return a.id < b.id; });
  return out;
}

}  // namespace pairmr
