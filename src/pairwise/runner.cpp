#include "pairwise/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "mr/backend/backend.hpp"
#include "mr/backend/session.hpp"
#include "mr/context.hpp"
#include "common/intmath.hpp"
#include "pairwise/aggregate.hpp"
#include "pairwise/broadcast_scheme.hpp"
#include "pairwise/candidates.hpp"
#include "pairwise/delta_scheme.hpp"
#include "pairwise/filtered_scheme.hpp"
#include "pairwise/hierarchical.hpp"

namespace pairmr {

namespace {

using mr::Bytes;

// ---------------------------------------------------------------------
// Job 1 — Algorithm 1: distribution and pairwise comparison.
// ---------------------------------------------------------------------

// map(id, element): emit (D, element) for every working set D of the id.
class DistributeMapper final : public mr::Mapper {
 public:
  explicit DistributeMapper(const DistributionScheme& scheme)
      : scheme_(scheme) {}

  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    const ElementId id = decode_u64_key(key);
    Element e;
    e.id = id;
    e.payload = value;
    std::string encoded = encode_element(e);
    const std::vector<TaskId> tasks = scheme_.subsets_of(id);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (i + 1 == tasks.size()) {
        // The last working-set copy moves the encoded bytes.
        ctx.emit(encode_u64_key(tasks[i]), std::move(encoded));
      } else {
        ctx.emit(encode_u64_key(tasks[i]), encoded);
      }
    }
  }

 private:
  const DistributionScheme& scheme_;
};

// reduce(D, [element]): evaluate getPairs(D), attach results to both pair
// members, re-emit every element keyed by its id.
class ComputeReducer final : public mr::Reducer {
 public:
  // `join_metering` (similarity join) additionally emits the Table 1
  // extension counters: every evaluated pair is a candidate, kept pairs
  // are survivors, the rest were pruned by the exact kernel. In the
  // symmetric mode the evaluator counts each unordered pair exactly once,
  // so pairs.candidate == pairs.survivor + pairs.pruned by construction.
  ComputeReducer(const DistributionScheme& scheme, const PairwiseJob& job,
                 bool join_metering = false)
      : scheme_(scheme), job_(job), join_metering_(join_metering) {}

  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    const TaskId task = decode_u64_key(key);

    std::vector<Element> elems;
    elems.reserve(values.size());
    for (const auto& v : values) elems.push_back(decode_element(v));

    // Dense slot index in the scheme's working-set (id) order: a flat
    // sorted array searched by lower_bound instead of a per-task hash
    // map — no hashing or pointer chasing on the per-pair hot path.
    std::vector<std::pair<ElementId, std::uint32_t>> index;
    index.reserve(elems.size());
    for (std::uint32_t i = 0; i < elems.size(); ++i) {
      index.emplace_back(elems[i].id, i);
    }
    std::sort(index.begin(), index.end());
    for (std::size_t i = 1; i < index.size(); ++i) {
      PAIRMR_CHECK(index[i].first != index[i - 1].first,
                   "duplicate element copy in one working set");
    }
    const auto slot_of = [&index](ElementId id) {
      const auto it = std::lower_bound(
          index.begin(), index.end(),
          std::pair<ElementId, std::uint32_t>{id, 0});
      PAIRMR_CHECK(it != index.end() && it->first == id,
                   "working set is missing a pair member");
      return it->second;
    };

    // Results are accumulated separately so compute() always sees
    // pristine elements (id + payload only). The evaluator prepares each
    // working-set element once — O(e) decodes per task, not O(e²).
    std::vector<std::vector<ResultEntry>> acc(elems.size());
    PairEvaluator evaluator(job_, elems);

    scheme_.for_each_pair(task, [&](ElementPair pair) {
      const std::uint32_t lo = slot_of(pair.lo);
      const std::uint32_t hi = slot_of(pair.hi);
      evaluator.evaluate(lo, hi, acc[lo], acc[hi]);
    });

    ctx.counters().add(counter::kEvaluations, evaluator.evaluations());
    ctx.counters().add(counter::kResultsKept, evaluator.kept());
    if (join_metering_) {
      ctx.counters().add(counter::kCandidatePairs, evaluator.evaluations());
      ctx.counters().add(counter::kSurvivorPairs, evaluator.kept());
      ctx.counters().add(counter::kPrunedPairs,
                         evaluator.evaluations() - evaluator.kept());
    }

    for (std::size_t i = 0; i < elems.size(); ++i) {
      elems[i].results = std::move(acc[i]);
      ctx.emit(encode_u64_key(elems[i].id), encode_element(elems[i]));
    }
  }

 private:
  const DistributionScheme& scheme_;
  const PairwiseJob& job_;
  const bool join_metering_;
};

// Job 2 — Algorithm 2 — is the public AggregateReducer
// (pairwise/aggregate.hpp), shared with PairwiseSession's incremental
// merge job.

// ---------------------------------------------------------------------
// §5.1 one-job broadcast variant.
// ---------------------------------------------------------------------

// Input records are task descriptors (key = task id). The dataset arrives
// via the distributed cache; map evaluates the task's pair-label range and
// emits per-element partial results (payloads are NOT re-shipped — the
// aggregating reducer re-reads them from the cache).
class BroadcastComputeMapper final : public mr::Mapper {
 public:
  BroadcastComputeMapper(const BroadcastScheme& scheme, const PairwiseJob& job,
                         const std::vector<std::string>& dataset_paths)
      : scheme_(scheme), job_(job), dataset_paths_(dataset_paths) {}

  void setup(mr::MapContext& ctx) override {
    elements_.clear();
    for (const auto& path : dataset_paths_) {
      for (const auto& rec : ctx.cache_file(path)) {
        Element e;
        e.id = decode_u64_key(rec.key);
        e.payload = rec.value;
        elements_.push_back(std::move(e));
      }
    }
    std::sort(elements_.begin(), elements_.end(),
              [](const Element& a, const Element& b) { return a.id < b.id; });
    PAIRMR_REQUIRE(elements_.size() == scheme_.num_elements(),
                   "cached dataset size does not match v");
    for (std::size_t i = 0; i < elements_.size(); ++i) {
      PAIRMR_REQUIRE(elements_[i].id == i,
                     "dataset ids must be dense 0..v-1");
    }
    // Ids are dense, so slot == id: accumulators are plain vectors and
    // the evaluator prepares every cached element once per map task.
    acc_.assign(elements_.size(), {});
    touched_.assign(elements_.size(), 0);
    evaluator_.emplace(job_, elements_);
  }

  void map(const Bytes& key, const Bytes& /*value*/,
           mr::MapContext& ctx) override {
    const TaskId task = decode_u64_key(key);
    const std::uint64_t evals_before = evaluator_->evaluations();
    const std::uint64_t kept_before = evaluator_->kept();
    scheme_.for_each_pair(task, [&](ElementPair pair) {
      touched_[pair.lo] = 1;
      touched_[pair.hi] = 1;
      evaluator_->evaluate(pair.lo, pair.hi, acc_[pair.lo], acc_[pair.hi]);
    });
    ctx.counters().add(counter::kEvaluations,
                       evaluator_->evaluations() - evals_before);
    ctx.counters().add(counter::kResultsKept,
                       evaluator_->kept() - kept_before);
  }

  void cleanup(mr::MapContext& ctx) override {
    // One record per touched element: its partial result list (possibly
    // empty when a keep-filter rejected everything).
    for (ElementId id = 0; id < acc_.size(); ++id) {
      if (touched_[id] == 0) continue;
      Element e;
      e.id = id;
      e.results = std::move(acc_[id]);
      ctx.emit(encode_u64_key(id), encode_element(e));
    }
    evaluator_.reset();
    acc_.clear();
    touched_.clear();
  }

 private:
  const BroadcastScheme& scheme_;
  const PairwiseJob& job_;
  const std::vector<std::string>& dataset_paths_;
  std::vector<Element> elements_;
  std::vector<std::vector<ResultEntry>> acc_;
  std::vector<char> touched_;
  std::optional<PairEvaluator> evaluator_;
};

// Aggregates partial result lists and joins the payload back in from the
// distributed cache.
class BroadcastAggregateReducer final : public mr::Reducer {
 public:
  BroadcastAggregateReducer(const PairwiseJob& job,
                            const std::vector<std::string>& dataset_paths)
      : job_(job), dataset_paths_(dataset_paths) {}

  void setup(mr::ReduceContext& ctx) override {
    payloads_.clear();
    for (const auto& path : dataset_paths_) {
      for (const auto& rec : ctx.cache_file(path)) {
        payloads_.emplace(decode_u64_key(rec.key), rec.value);
      }
    }
  }

  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    std::vector<Element> copies;
    copies.reserve(values.size());
    for (const auto& v : values) copies.push_back(decode_element(v));
    Element merged = merge_copies(std::move(copies));
    const auto it = payloads_.find(merged.id);
    PAIRMR_CHECK(it != payloads_.end(), "result for unknown element id");
    merged.payload = it->second;
    if (job_.finalize) job_.finalize(merged);
    ctx.emit(key, encode_element(merged));
  }

 private:
  const PairwiseJob& job_;
  const std::vector<std::string>& dataset_paths_;
  std::unordered_map<ElementId, std::string> payloads_;
};

void validate_job(const PairwiseJob& job) {
  PAIRMR_REQUIRE(job.compute != nullptr, "pairwise job needs a compute fn");
  PAIRMR_REQUIRE((job.prepared.prepare == nullptr) ==
                     (job.prepared.compare == nullptr),
                 "prepared kernel needs both prepare and compare");
}

// Engine knobs every pipeline job inherits from the run's options.
void apply_engine_options(mr::JobSpec& spec, const PairwiseOptions& options) {
  spec.fault_plan = options.fault_plan;
  spec.speculative_execution = options.speculative_execution;
  spec.memory_budget = options.memory_budget;
  spec.backend = options.backend;
  spec.shuffle_plane = options.shuffle_plane;
}

std::uint64_t dir_bytes(const mr::SimDfs& dfs, const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& path : dfs.list(prefix)) total += dfs.open(path)->bytes;
  return total;
}

std::uint64_t dir_records(const mr::SimDfs& dfs, const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& path : dfs.list(prefix)) {
    total += dfs.open(path)->records.size();
  }
  return total;
}

bool is_max_counter(const std::string& name) {
  return name.find(".max.") != std::string::npos;
}

// Fold the memory-budget counters of every executed job into the report's
// dedicated fields.
void settle_metering(RunReport& report) {
  report.spill_runs = report.counter(mr::counter::kSpillRuns);
  report.spill_bytes = report.counter(mr::counter::kSpillBytes);
  report.merge_passes = report.counter(mr::counter::kMergePasses);
  report.max_tracked_bytes =
      report.counter(mr::counter::kMemoryMaxTrackedBytes);
}

// --- Driver: two-job pipeline (§4) -------------------------------------

RunReport run_two_job(mr::Cluster& cluster,
                      mr::backend::BackendSession& session,
                      const RunSpec& spec, bool join_metering = false) {
  const DistributionScheme& scheme = *spec.scheme;
  const PairwiseOptions& options = spec.options;
  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();

  const std::string intermediate_dir = options.work_dir + "/intermediate";
  const std::string output_dir = options.work_dir + "/output";
  dfs.remove_prefix(intermediate_dir);
  dfs.remove_prefix(output_dir);

  RunReport report;
  report.mode = RunMode::kTwoJob;

  // Job 1: distribute + compare.
  mr::JobSpec job1;
  job1.name = "pairwise-distribute[" + scheme.name() + "]";
  job1.input_paths = spec.input_paths;
  job1.output_dir = intermediate_dir;
  job1.mapper_factory = [&scheme] {
    return std::make_unique<DistributeMapper>(scheme);
  };
  job1.reducer_factory = [&scheme, &job = spec.job, join_metering] {
    return std::make_unique<ComputeReducer>(scheme, job, join_metering);
  };
  job1.partitioner = options.distribute_partitioner;
  job1.num_reduce_tasks = options.num_reduce_tasks;
  job1.max_records_per_split = options.max_records_per_split;
  apply_engine_options(job1, options);

  // Job 2 spec, built BEFORE job 1 runs: a persistent fork pool snapshots
  // the coordinator's memory when it forks for the epoch's first job, so
  // every spec the pool will ever serve must already exist then. Only
  // input_paths is filled in afterwards — workers receive splits by
  // value, never through the spec.
  mr::JobSpec job2;
  if (options.run_aggregation) {
    job2.name = "pairwise-aggregate[" + scheme.name() + "]";
    job2.output_dir = output_dir;
    job2.mapper_factory = [] { return std::make_unique<mr::IdentityMapper>(); };
    job2.reducer_factory = [&job = spec.job] {
      return std::make_unique<AggregateReducer>(job.finalize);
    };
    if (options.aggregation_combiner) {
      // The combiner merges partial copies only — finalize must run
      // exactly once per element, in the reducer.
      static const FinalizeFn kNoFinalize;
      job2.combiner_factory = [] {
        return std::make_unique<AggregateReducer>(kNoFinalize);
      };
    }
    job2.num_reduce_tasks = options.num_reduce_tasks;
    apply_engine_options(job2, options);
    session.declare(job2);
  }
  session.declare(job1);
  report.compute_jobs.push_back(session.run(engine, job1));
  const mr::JobResult& r1 = report.compute_jobs.back();

  const std::uint64_t v = scheme.num_elements();
  report.evaluations = r1.counter(counter::kEvaluations);
  report.results_kept = r1.counter(counter::kResultsKept);
  report.replication_factor =
      static_cast<double>(r1.counter(mr::counter::kMapOutputRecords)) /
      static_cast<double>(v);
  report.max_working_set_records =
      r1.counter(mr::counter::kReduceMaxGroupRecords);
  report.max_working_set_bytes =
      r1.counter(mr::counter::kReduceMaxGroupBytes);
  report.intermediate_bytes = dir_bytes(dfs, intermediate_dir);
  report.shuffle_remote_bytes =
      r1.counter(mr::counter::kShuffleBytesRemote);

  // Job 2: aggregation (optional).
  if (options.run_aggregation) {
    job2.input_paths = r1.output_paths;
    report.merge_jobs.push_back(session.run(engine, job2));
    report.aggregated = true;
    report.shuffle_remote_bytes +=
        report.merge_jobs.back().counter(mr::counter::kShuffleBytesRemote);
    report.output_dir = output_dir;
    if (options.cleanup_intermediate) dfs.remove_prefix(intermediate_dir);
  } else {
    report.output_dir = intermediate_dir;
  }
  settle_metering(report);
  return report;
}

// --- Driver: one-job broadcast (§5.1) -----------------------------------

RunReport run_broadcast(mr::Cluster& cluster,
                        mr::backend::BackendSession& session,
                        const RunSpec& spec) {
  const PairwiseOptions& options = spec.options;
  const std::uint64_t v = spec.broadcast.v;
  const std::uint64_t num_tasks = spec.broadcast.num_tasks;
  const BroadcastScheme scheme(v, num_tasks);
  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();

  const std::string tasks_dir = options.work_dir + "/tasks";
  const std::string output_dir = options.work_dir + "/output";
  dfs.remove_prefix(tasks_dir);
  dfs.remove_prefix(output_dir);

  // Task descriptors, spread round-robin so every node computes.
  std::vector<mr::Record> descriptors;
  descriptors.reserve(num_tasks);
  for (TaskId t = 0; t < num_tasks; ++t) {
    descriptors.push_back(mr::Record{encode_u64_key(t), ""});
  }
  const auto task_paths = cluster.scatter_records(tasks_dir,
                                                  std::move(descriptors));

  mr::JobSpec job;
  job.name = "pairwise-broadcast-onejob";
  job.input_paths = task_paths;
  job.output_dir = output_dir;
  job.cache_paths = spec.input_paths;
  job.mapper_factory = [&scheme, &pj = spec.job, &paths = spec.input_paths] {
    return std::make_unique<BroadcastComputeMapper>(scheme, pj, paths);
  };
  job.reducer_factory = [&pj = spec.job, &paths = spec.input_paths] {
    return std::make_unique<BroadcastAggregateReducer>(pj, paths);
  };
  job.num_reduce_tasks = options.num_reduce_tasks;
  // One map task per descriptor record: each task descriptor is an
  // independent unit of work.
  job.max_records_per_split = 1;
  apply_engine_options(job, options);

  RunReport report;
  report.mode = RunMode::kBroadcast;
  session.declare(job);
  report.compute_jobs.push_back(session.run(engine, job));
  const mr::JobResult& r = report.compute_jobs.back();
  report.aggregated = true;  // aggregation happens in the same job's reduce
  report.evaluations = r.counter(counter::kEvaluations);
  report.results_kept = r.counter(counter::kResultsKept);
  report.cache_broadcast_bytes =
      r.counter(mr::counter::kCacheBroadcastBytes);

  std::uint64_t dataset_bytes = 0;
  for (const auto& path : spec.input_paths) {
    dataset_bytes += dfs.open(path)->bytes;
  }
  if (dataset_bytes > 0) {
    // Effective replication: how many dataset copies the broadcast made.
    report.replication_factor =
        static_cast<double>(report.cache_broadcast_bytes + dataset_bytes) /
        static_cast<double>(dataset_bytes);
  }
  // The working set of every map task is the whole cached dataset.
  report.max_working_set_records = dir_records(dfs, tasks_dir) > 0 ? v : 0;
  report.max_working_set_bytes = dataset_bytes;
  report.intermediate_bytes = r.counter(mr::counter::kMapOutputBytes);
  report.shuffle_remote_bytes =
      r.counter(mr::counter::kShuffleBytesRemote);
  report.output_dir = output_dir;
  settle_metering(report);
  return report;
}

// --- Driver: round-based execution (§7) ---------------------------------

RunReport run_rounds(mr::Cluster& cluster,
                     mr::backend::BackendSession& session,
                     const RunSpec& spec) {
  const DistributionScheme& scheme = *spec.scheme;
  const PairwiseOptions& options = spec.options;
  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();

  RunReport report;
  report.mode = RunMode::kRounds;
  std::vector<std::string> accumulated;  // output-so-far paths
  std::string accumulated_dir;

  for (std::size_t round = 0; round < spec.rounds.size(); ++round) {
    const FilteredScheme round_scheme(scheme, spec.rounds[round]);
    const std::string round_dir =
        options.work_dir + "/round-" + std::to_string(round);
    dfs.remove_prefix(round_dir);

    mr::JobSpec job1;
    job1.name = "pairwise-round-" + std::to_string(round) + "[" +
                scheme.name() + "]";
    job1.input_paths = spec.input_paths;
    job1.output_dir = round_dir;
    job1.mapper_factory = [&round_scheme] {
      return std::make_unique<DistributeMapper>(round_scheme);
    };
    job1.reducer_factory = [&round_scheme, &job = spec.job] {
      return std::make_unique<ComputeReducer>(round_scheme, job);
    };
    job1.partitioner = options.distribute_partitioner;
    job1.num_reduce_tasks = options.num_reduce_tasks;
    job1.max_records_per_split = options.max_records_per_split;
    apply_engine_options(job1, options);

    // The round's merge spec, built before job 1 runs so both jobs share
    // one pool epoch (each round's fresh specs force a new fork anyway —
    // the factories capture this round's scheme — but within a round the
    // merge reuses the warm workers). input_paths is filled in after
    // job 1; finalize must run exactly once per element — only in the
    // last merge.
    const bool last = round + 1 == spec.rounds.size();
    const std::string next_accum_dir =
        options.work_dir + (last ? "/output"
                                 : "/accum-" + std::to_string(round));
    static const FinalizeFn kNoFinalize;
    const FinalizeFn& fin = last ? spec.job.finalize : kNoFinalize;
    mr::JobSpec merge;
    merge.name = "pairwise-merge-" + std::to_string(round);
    merge.output_dir = next_accum_dir;
    merge.mapper_factory = [] {
      return std::make_unique<mr::IdentityMapper>();
    };
    merge.reducer_factory = [&fin] {
      return std::make_unique<AggregateReducer>(fin);
    };
    merge.num_reduce_tasks = options.num_reduce_tasks;
    apply_engine_options(merge, options);

    session.declare(job1);
    session.declare(merge);
    const mr::JobResult r1 = session.run(engine, job1);

    report.evaluations += r1.counter(counter::kEvaluations);
    report.results_kept += r1.counter(counter::kResultsKept);
    report.shuffle_remote_bytes +=
        r1.counter(mr::counter::kShuffleBytesRemote);
    report.max_working_set_records =
        std::max(report.max_working_set_records,
                 r1.counter(mr::counter::kReduceMaxGroupRecords));
    report.max_working_set_bytes =
        std::max(report.max_working_set_bytes,
                 r1.counter(mr::counter::kReduceMaxGroupBytes));
    // The round's materialized intermediate data plus the previous
    // accumulated output that must coexist during the merge.
    report.intermediate_bytes = std::max(
        report.intermediate_bytes, dir_bytes(dfs, round_dir));

    if (dir_records(dfs, round_dir) == 0) {
      // Round touched no elements (all its tasks were empty); skip merge.
      dfs.remove_prefix(round_dir);
      report.compute_jobs.push_back(r1);
      continue;
    }

    // Merge this round into the accumulated output ("each block is
    // aggregated before the next one is processed", paper §7).
    dfs.remove_prefix(next_accum_dir);
    merge.input_paths = r1.output_paths;
    merge.input_paths.insert(merge.input_paths.end(), accumulated.begin(),
                             accumulated.end());
    const mr::JobResult rm = session.run(engine, merge);

    report.shuffle_remote_bytes +=
        rm.counter(mr::counter::kShuffleBytesRemote);
    dfs.remove_prefix(round_dir);
    if (!accumulated_dir.empty()) dfs.remove_prefix(accumulated_dir);
    accumulated = rm.output_paths;
    accumulated_dir = next_accum_dir;

    report.compute_jobs.push_back(r1);
    report.merge_jobs.push_back(rm);
    report.aggregated = true;
  }

  report.output_dir = accumulated_dir;
  settle_metering(report);
  return report;
}

// --- Driver: thresholded similarity join (DESIGN.md §14) ----------------

RunReport run_similarity_join(mr::Cluster& cluster,
                              mr::backend::BackendSession& session,
                              const RunSpec& spec) {
  const DistributionScheme& base = *spec.scheme;
  PAIRMR_REQUIRE(
      !spec.job.compute && !spec.job.prepared.prepare &&
          !spec.job.prepared.compare && !spec.job.keep,
      "RunMode::kSimilarityJoin synthesizes compute/prepared/keep from "
      "PairwiseOptions::similarity_join — leave them unset on "
      "RunSpec::job (only finalize is honored); to run a custom kernel "
      "with a filter, use RunMode::kTwoJob with your own KeepFn");

  // Candidate phase: MR jobs that upper-bound the surviving pairs. Its
  // jobs inherit the run's engine options (faults, budget, backend), so
  // the whole equivalence matrix exercises this phase too.
  CandidatePhase phase = generate_candidates(
      cluster, session, spec.input_paths, base.num_elements(), spec.options);

  // Pairwise phase: the standard two-job driver over the base scheme,
  // restricted to the candidates. Shipping (subsets_of) is untouched, so
  // the aggregated output is byte-identical to an exhaustive run whose
  // KeepFn applies the same threshold.
  RunSpec inner = spec;
  inner.mode = RunMode::kTwoJob;
  inner.job = similarity_join_job(spec.options.similarity_join,
                                  spec.job.finalize);
  if (!phase.exhaustive) {
    // The filtered view shares ownership of the base scheme, so the
    // inner spec stays self-contained.
    inner.scheme = std::make_shared<CandidateScheme>(
        base, std::move(phase.candidates));
  }
  RunReport report =
      run_two_job(cluster, session, inner, /*join_metering=*/true);

  report.mode = RunMode::kSimilarityJoin;
  report.candidate_jobs = std::move(phase.jobs);
  report.candidate_pairs = report.counter(counter::kCandidatePairs);
  report.survivor_pairs = report.counter(counter::kSurvivorPairs);
  report.pruned_pairs = report.counter(counter::kPrunedPairs);
  settle_metering(report);  // re-settle: candidate jobs spill too
  return report;
}

// --- Driver: incremental delta plan (DESIGN.md §16) ---------------------

RunReport run_delta(mr::Cluster& cluster,
                    mr::backend::BackendSession& session,
                    const RunSpec& spec) {
  const DeltaTarget& target = spec.delta;
  const std::uint64_t base_v = target.base_v;
  const std::uint64_t delta_v = target.delta_v;
  const std::uint64_t grid_a =
      target.cross_grid_a != 0
          ? target.cross_grid_a
          : std::min<std::uint64_t>(cluster.num_nodes(), base_v);
  const std::uint64_t grid_b =
      target.cross_grid_b != 0 ? target.cross_grid_b : 1;

  RunSpec inner = spec;
  inner.mode = RunMode::kTwoJob;
  inner.scheme =
      std::make_shared<DeltaScheme>(base_v, delta_v, grid_a, grid_b);

  RunReport report = run_two_job(cluster, session, inner);
  report.mode = RunMode::kDelta;
  report.pairs_delta = inner.scheme->total_pairs();
  report.pairs_reused = triangular(base_v - 1);
  // The delta plan tiles the union's pair set exactly once.
  PAIRMR_CHECK(report.pairs_delta + report.pairs_reused ==
                   triangular(base_v + delta_v - 1),
               "delta + reused pairs must tile C(base_v + delta_v, 2)");
  PAIRMR_CHECK(report.evaluations == report.pairs_delta ||
                   spec.job.symmetry == Symmetry::kNonSymmetric,
               "delta run evaluated a different pair count than planned");
  return report;
}

}  // namespace

const char* to_string(RunMode mode) {
  switch (mode) {
    case RunMode::kTwoJob:
      return "two-job";
    case RunMode::kBroadcast:
      return "broadcast";
    case RunMode::kRounds:
      return "rounds";
    case RunMode::kSimilarityJoin:
      return "similarity-join";
    case RunMode::kDelta:
      return "delta";
  }
  return "unknown";
}

void RunSpec::set_scheme(const DistributionScheme* s) {
  scheme = s == nullptr
               ? nullptr
               : std::shared_ptr<const DistributionScheme>(
                     std::shared_ptr<const void>(), s);
}

std::shared_ptr<const DistributionScheme> borrow_scheme(
    const DistributionScheme& scheme) {
  // Aliasing constructor with an empty owner: refcounting is disabled,
  // lifetime stays the caller's problem — exactly the documented
  // borrow contract.
  return std::shared_ptr<const DistributionScheme>(
      std::shared_ptr<const void>(), &scheme);
}

std::uint64_t RunReport::counter(const std::string& name) const {
  std::uint64_t total = 0;
  const bool use_max = is_max_counter(name);
  const auto fold = [&](const std::vector<mr::JobResult>& jobs) {
    for (const auto& job : jobs) {
      const std::uint64_t v = job.counter(name);
      total = use_max ? std::max(total, v) : total + v;
    }
  };
  fold(candidate_jobs);
  fold(compute_jobs);
  fold(merge_jobs);
  return total;
}

void validate_pairwise_options(const mr::Cluster& cluster,
                               const PairwiseOptions& options,
                               RunMode mode) {
  PAIRMR_REQUIRE(cluster.num_alive() > 0,
                 "cluster has no alive nodes to run pairwise jobs on");
  PAIRMR_REQUIRE(!options.work_dir.empty(),
                 "PairwiseOptions::work_dir must name a DFS directory "
                 "(intermediate and output files are written under it)");
  PAIRMR_REQUIRE(
      options.distribute_partitioner == nullptr ||
          options.num_reduce_tasks != 0,
      "PairwiseOptions::distribute_partitioner is set but num_reduce_tasks "
      "is 0 (one task per node): a custom task-id partitioner only routes "
      "meaningfully over an explicit reduce-task count — set "
      "num_reduce_tasks, e.g. to the scheme's num_tasks()");
  PAIRMR_REQUIRE(
      !options.memory_budget.enabled() ||
          options.memory_budget.merge_fan_in >= 2,
      "PairwiseOptions::memory_budget.merge_fan_in must be >= 2 when the "
      "budget is enabled (got " +
          std::to_string(options.memory_budget.merge_fan_in) +
          "); a 1-way merge cannot make progress");
  if (mode == RunMode::kDelta) {
    PAIRMR_REQUIRE(
        options.distribute_partitioner == nullptr,
        "PairwiseOptions::distribute_partitioner cannot be used with "
        "RunMode::kDelta: the delta driver synthesizes its own scheme "
        "(cross rectangle + intra-delta task), so its task-id space is "
        "not known to the caller — use the default hash partitioner");
  }
  if (mode == RunMode::kSimilarityJoin) {
    const SimilarityJoinOptions& join = options.similarity_join;
    PAIRMR_REQUIRE(
        !std::isnan(join.threshold) && join.threshold >= 0.0 &&
            join.threshold <= 1.0,
        "PairwiseOptions::similarity_join.threshold must be within [0, 1] "
        "(got " +
            std::to_string(join.threshold) +
            "): Jaccard similarity is bounded — use 0 to keep every pair "
            "or 1 to keep identical sets only");
    PAIRMR_REQUIRE(
        join.kernel == SimilarityKernel::kJaccardTokenSet,
        std::string("PairwiseOptions::similarity_join.kernel is ") +
            to_string(join.kernel) +
            ", but the candidate filters (prefix, LSH banding) are "
            "set-overlap bounds and only apply to set kernels "
            "(jaccard-token-set); for vector kernels run "
            "RunMode::kTwoJob with a KeepFn threshold instead");
    if (join.filter == CandidateFilter::kLshBanding) {
      PAIRMR_REQUIRE(
          join.lsh_bands >= 1 && join.lsh_rows >= 1,
          "PairwiseOptions::similarity_join needs lsh_bands >= 1 and "
          "lsh_rows >= 1 (got bands=" +
              std::to_string(join.lsh_bands) + ", rows=" +
              std::to_string(join.lsh_rows) +
              "); each band hashes `rows` minhash slots into one bucket "
              "key");
    }
  }
}

RunReport PairwiseRunner::run(const RunSpec& spec) {
  // One backend session per run: every job of a multi-job mode shares the
  // same persistent fork pool (workers are re-armed via kBeginJob instead
  // of re-forked), torn down when the session goes out of scope.
  mr::backend::BackendSession session(cluster_, spec.options.backend);
  return run(spec, session);
}

RunReport PairwiseRunner::run(const RunSpec& spec,
                              mr::backend::BackendSession& session) {
  // The join driver synthesizes its own job; every other mode needs a
  // caller-supplied compute fn.
  if (spec.mode != RunMode::kSimilarityJoin) validate_job(spec.job);
  validate_pairwise_options(cluster_, spec.options, spec.mode);
  PAIRMR_REQUIRE(!spec.input_paths.empty(),
                 "RunSpec::input_paths is empty — nothing to compare");

  RunReport report;
  switch (spec.mode) {
    case RunMode::kTwoJob:
      PAIRMR_REQUIRE(spec.scheme != nullptr,
                     "RunMode::kTwoJob needs RunSpec::scheme");
      report = run_two_job(cluster_, session, spec);
      break;
    case RunMode::kBroadcast:
      PAIRMR_REQUIRE(spec.broadcast.v > 0 && spec.broadcast.num_tasks > 0,
                     "RunMode::kBroadcast needs RunSpec::broadcast "
                     "(v and num_tasks both positive)");
      report = run_broadcast(cluster_, session, spec);
      break;
    case RunMode::kRounds:
      PAIRMR_REQUIRE(spec.scheme != nullptr,
                     "RunMode::kRounds needs RunSpec::scheme");
      PAIRMR_REQUIRE(!spec.rounds.empty(), "need at least one round");
      report = run_rounds(cluster_, session, spec);
      break;
    case RunMode::kSimilarityJoin:
      PAIRMR_REQUIRE(spec.scheme != nullptr,
                     "RunMode::kSimilarityJoin needs RunSpec::scheme — "
                     "the inner scheme the candidate-filtered pairwise "
                     "phase runs over (any two-job scheme family: "
                     "broadcast/block/design/quorum)");
      report = run_similarity_join(cluster_, session, spec);
      break;
    case RunMode::kDelta:
      PAIRMR_REQUIRE(spec.delta.base_v >= 1 && spec.delta.delta_v >= 1,
                     "RunMode::kDelta needs RunSpec::delta (base_v and "
                     "delta_v both >= 1); a run with no cached base is "
                     "just RunMode::kTwoJob");
      report = run_delta(cluster_, session, spec);
      break;
  }
  report.shuffle_plane =
      session.kind() == mr::BackendKind::kFork
          ? mr::backend::resolve_shuffle_plane(spec.options.shuffle_plane)
          : mr::ShufflePlane::kSocket;
  report.workers_forked = session.workers_forked();
  report.workers_reused = session.workers_reused();
  return report;
}

RunReport PairwiseRunner::run_planned(const PlanRequest& request,
                                      const std::vector<std::string>& inputs,
                                      const PairwiseJob& job,
                                      const PairwiseOptions& options,
                                      PlaneConstruction construction) {
  const Plan plan = plan_scheme(request);

  RunSpec spec;
  spec.input_paths = inputs;
  spec.job = job;
  spec.options = options;

  RunReport report;
  if (!plan.feasible) {
    // No scheme fits the limits: §7 hierarchical processing — run a
    // design scheme in chunks of n tasks, so only one round's
    // intermediate data is ever materialized.
    const auto scheme = std::make_shared<DesignScheme>(request.v,
                                                       construction);
    spec.mode = RunMode::kRounds;
    spec.scheme = scheme;
    spec.rounds = chunked_rounds(
        *scheme, std::max<std::uint64_t>(1, request.num_nodes));
    report = run(spec);
    report.fell_back_to_rounds = true;
  } else if (plan.kind == SchemeKind::kBroadcast) {
    spec.mode = RunMode::kBroadcast;
    spec.broadcast =
        BroadcastTarget{.v = request.v, .num_tasks = plan.broadcast_tasks};
    report = run(spec);
  } else {
    spec.mode = RunMode::kTwoJob;
    spec.scheme = make_scheme(plan, request.v, construction);
    report = run(spec);
  }
  report.planned = true;
  report.plan = plan;
  return report;
}

}  // namespace pairmr
