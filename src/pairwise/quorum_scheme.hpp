// Cyclic-quorum distribution scheme (Kleinheksel & Somani, "Scaling
// Distributed All-Pairs Algorithms").
//
// Task t's working set is the translate Q_t = { (d + t) mod v : d ∈ D }
// of a difference cover D ⊆ Z_v. Because every residue is a difference of
// two cover elements, every unordered pair shares at least one quorum;
// the scheme pins each pair to exactly one canonical owner: for the pair
// (lo, hi) with plain difference d = hi − lo, the owner is
// t = (lo − canon(d)) mod v, where canon(d) is the deterministically
// chosen cover element with canon(d) + d (mod v) also in the cover.
//
// Compared with the design schemes this drops the q²+q+1 prime-power
// lattice entirely: any v >= 0 works, there are exactly v tasks, and all
// working sets have exactly |D| elements (perfect balance) at the cost of
// ~2√v replication for generic v (√v when v is an exact Singer plane
// order, where D degrades to the planar difference set). Membership is
// the same O(|D|) = O(√v) modular arithmetic CyclicDesignScheme uses, and
// total state is O(v): the cover, one canonical offset per residue, and
// one owned-pair count per task.
#pragma once

#include <cstdint>
#include <vector>

#include "pairwise/scheme.hpp"

namespace pairmr {

class QuorumScheme final : public DistributionScheme {
 public:
  // Builds design::difference_cover(v). Any v >= 0 (v <= 1 has no pairs).
  explicit QuorumScheme(std::uint64_t v);

  // Explicit cover (deduplicated and sorted internally); must be a
  // difference cover of Z_v — every residue a difference of two elements.
  QuorumScheme(std::uint64_t v, std::vector<std::uint64_t> cover);

  std::string name() const override { return "quorum"; }
  std::uint64_t num_elements() const override { return v_; }
  // One task per translate: exactly v (0 when the set is empty).
  std::uint64_t num_tasks() const override { return v_; }

  std::vector<TaskId> subsets_of(ElementId id) const override;
  std::vector<ElementPair> pairs_in(TaskId task) const override;
  SchemeMetrics metrics() const override;
  std::uint64_t total_pairs() const override;
  std::vector<ElementId> working_set(TaskId task) const override;

  const std::vector<std::uint64_t>& cover() const { return cover_; }

  // Exact per-task ownership extremes (each task owns at most one pair
  // per difference d, so max <= v-1; the average is (v-1)/2).
  std::uint64_t max_owned_pairs() const { return max_owned_; }
  std::uint64_t min_owned_pairs() const { return min_owned_; }

 private:
  std::uint64_t v_ = 0;
  std::vector<std::uint64_t> cover_;   // sorted difference cover of Z_v
  std::vector<std::uint64_t> canon_;   // canon_[d], d in [1, v); [0] unused
  std::vector<std::uint64_t> owned_;   // pairs owned by each task
  std::uint64_t max_owned_ = 0;
  std::uint64_t min_owned_ = 0;
};

}  // namespace pairmr
