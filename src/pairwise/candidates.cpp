#include "pairwise/candidates.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/intmath.hpp"
#include "common/serde.hpp"
#include "mr/context.hpp"
#include "pairwise/cost_model.hpp"
#include "pairwise/tokenset.hpp"

namespace pairmr {

namespace {

using mr::Bytes;

// Posting-list group key for documents with an empty token set. Token
// keys occupy the u32 range, so this can never collide with a real token.
constexpr std::uint64_t kEmptySetKey = std::uint64_t{1} << 32;

std::string encode_posting(ElementId id, std::uint64_t size) {
  BufWriter w;
  w.put_u64(id);
  w.put_u64(size);
  return std::move(w).str();
}

std::pair<ElementId, std::uint64_t> decode_posting(const Bytes& bytes) {
  BufReader r(bytes);
  const ElementId id = r.get_u64();
  const std::uint64_t size = r.get_u64();
  return {id, size};
}

std::string encode_pair_key(const ElementPair& pair) {
  BufWriter w;
  w.put_u64_ordered(pair.lo);
  w.put_u64_ordered(pair.hi);
  return std::move(w).str();
}

ElementPair decode_pair_key(const Bytes& bytes) {
  BufReader r(bytes);
  ElementPair p;
  p.lo = r.get_u64_ordered();
  p.hi = r.get_u64_ordered();
  return p;
}

// Mirrors runner.cpp: engine knobs every pipeline job inherits.
void apply_engine_options(mr::JobSpec& spec, const PairwiseOptions& options) {
  spec.fault_plan = options.fault_plan;
  spec.speculative_execution = options.speculative_execution;
  spec.memory_budget = options.memory_budget;
  spec.backend = options.backend;
  spec.shuffle_plane = options.shuffle_plane;
}

// --- Job "simjoin-tokenfreq": token -> document frequency ---------------

class TokenFreqMapper final : public mr::Mapper {
 public:
  void map(const Bytes& /*key*/, const Bytes& value,
           mr::MapContext& ctx) override {
    std::vector<std::uint32_t> tokens = decode_token_set(value);
    // Defensive dedup: the payload contract says set, but a duplicated
    // token must not double-count the document.
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    std::string one;
    {
      BufWriter w;
      w.put_u64(1);
      one = std::move(w).str();
    }
    for (const std::uint32_t t : tokens) {
      ctx.emit(encode_u64_key(t), one);
    }
  }
};

// Sums u64 counts; used as both combiner and reducer of the freq job.
class SumReducer final : public mr::Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    std::uint64_t total = 0;
    for (const auto& v : values) {
      BufReader r(v);
      total += r.get_u64();
    }
    BufWriter w;
    w.put_u64(total);
    ctx.emit(key, std::move(w).str());
  }
};

// --- Job "simjoin-candidates[prefix]": prefix postings ------------------

using TokenRank = std::unordered_map<std::uint32_t, std::uint32_t>;

class PrefixPostingMapper final : public mr::Mapper {
 public:
  PrefixPostingMapper(std::shared_ptr<const TokenRank> rank,
                      double threshold)
      : rank_(std::move(rank)), threshold_(threshold) {}

  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    const ElementId id = decode_u64_key(key);
    std::vector<std::uint32_t> tokens = decode_token_set(value);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    const std::uint64_t size = tokens.size();
    if (size == 0) {
      // Empty sets have J(∅,∅) = 1 with each other: group them under one
      // sentinel key so those pairs become candidates.
      ctx.emit(encode_u64_key(kEmptySetKey), encode_posting(id, 0));
      return;
    }
    // Rare-first order: ascending global frequency, token id as
    // tie-breaker. Any order works for correctness as long as every
    // document uses the same one; rare-first keeps posting lists short.
    std::sort(tokens.begin(), tokens.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return std::make_pair(rank_of(a), a) <
                       std::make_pair(rank_of(b), b);
              });
    const std::uint64_t prefix = prefix_length(size, threshold_);
    for (std::uint64_t i = 0; i < prefix; ++i) {
      ctx.emit(encode_u64_key(tokens[i]), encode_posting(id, size));
    }
  }

 private:
  std::uint64_t rank_of(std::uint32_t token) const {
    const auto it = rank_->find(token);
    // A token absent from the frequency table sorts last — consistent
    // across all documents, which is all prefix correctness needs.
    return it == rank_->end() ? ~std::uint64_t{0} : it->second;
  }

  std::shared_ptr<const TokenRank> rank_;
  double threshold_;
};

// --- Job "simjoin-candidates[lsh]": minhash band buckets ----------------

class LshBandMapper final : public mr::Mapper {
 public:
  explicit LshBandMapper(const SimilarityJoinOptions& join) : join_(join) {}

  void map(const Bytes& key, const Bytes& value,
           mr::MapContext& ctx) override {
    const ElementId id = decode_u64_key(key);
    std::vector<std::uint32_t> tokens = decode_token_set(value);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    const std::vector<std::uint64_t> sig = minhash_signature(
        tokens, join_.lsh_bands * join_.lsh_rows, join_.lsh_seed);
    for (std::uint32_t b = 0; b < join_.lsh_bands; ++b) {
      std::uint64_t h = join_.lsh_seed;
      for (std::uint32_t r = 0; r < join_.lsh_rows; ++r) {
        h = hash_combine(h, sig[static_cast<std::size_t>(b) * join_.lsh_rows +
                                r]);
      }
      // Band index leads the key so buckets of different bands can never
      // merge, whatever the hash values.
      BufWriter w;
      w.put_u32(b);
      w.put_u64_ordered(h);
      ctx.emit(std::move(w).str(), encode_posting(id, tokens.size()));
    }
  }

 private:
  const SimilarityJoinOptions join_;
};

// Pairs up one posting list (documents sharing a prefix token or an LSH
// band bucket), applying the length filter. Shared by both filters.
class PostingPairReducer final : public mr::Reducer {
 public:
  explicit PostingPairReducer(double threshold) : threshold_(threshold) {}

  void reduce(const Bytes& /*key*/, const std::vector<Bytes>& values,
              mr::ReduceContext& ctx) override {
    std::vector<std::pair<ElementId, std::uint64_t>> postings;
    postings.reserve(values.size());
    for (const auto& v : values) postings.push_back(decode_posting(v));
    std::sort(postings.begin(), postings.end());
    postings.erase(std::unique(postings.begin(), postings.end()),
                   postings.end());
    std::uint64_t emitted = 0;
    for (std::size_t i = 0; i < postings.size(); ++i) {
      for (std::size_t j = i + 1; j < postings.size(); ++j) {
        if (!length_filter_passes(postings[i].second, postings[j].second,
                                  threshold_)) {
          continue;
        }
        ctx.emit(encode_pair_key(ElementPair{postings[i].first,
                                             postings[j].first}),
                 "");
        ++emitted;
      }
    }
    ctx.counters().add(counter::kCandidateContributions, emitted);
  }

 private:
  double threshold_;
};

// --- Job "simjoin-dedup": one record per distinct candidate pair --------

class DedupPairReducer final : public mr::Reducer {
 public:
  void reduce(const Bytes& key, const std::vector<Bytes>& /*values*/,
              mr::ReduceContext& ctx) override {
    ctx.emit(key, "");
    ctx.counters().add(counter::kCandidateDistinct, 1);
  }
};

}  // namespace

CandidateSet::CandidateSet(std::vector<ElementPair> pairs)
    : pairs_(std::move(pairs)) {
  for (const ElementPair& p : pairs_) {
    PAIRMR_REQUIRE(p.lo < p.hi,
                   "candidate pairs must be canonical (lo < hi)");
  }
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool CandidateSet::contains(const ElementPair& pair) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), pair);
}

CandidateScheme::CandidateScheme(const DistributionScheme& base,
                                 CandidateSet candidates)
    : base_(base), candidates_(std::move(candidates)) {
  for (const ElementPair& p : candidates_.pairs()) {
    PAIRMR_REQUIRE(p.hi < base_.num_elements(),
                   "candidate pair references element id " +
                       std::to_string(p.hi) + " outside the scheme's v=" +
                       std::to_string(base_.num_elements()));
  }
}

std::vector<ElementPair> CandidateScheme::pairs_in(TaskId task) const {
  std::vector<ElementPair> pairs;
  for_each_pair(task, [&pairs](ElementPair p) { pairs.push_back(p); });
  return pairs;
}

void CandidateScheme::for_each_pair(
    TaskId task, const std::function<void(ElementPair)>& fn) const {
  base_.for_each_pair(task, [this, &fn](ElementPair p) {
    if (candidates_.contains(p)) fn(p);
  });
}

SchemeMetrics CandidateScheme::metrics() const {
  const std::uint64_t all = pair_count(base_.num_elements());
  const double fraction =
      all == 0 ? 1.0
               : static_cast<double>(candidates_.size()) /
                     static_cast<double>(all);
  SchemeMetrics m = with_candidate_fraction(base_.metrics(), fraction);
  m.scheme = name();
  return m;
}

CandidatePhase generate_candidates(
    mr::Cluster& cluster, mr::backend::BackendSession& session,
    const std::vector<std::string>& input_paths, std::uint64_t v,
    const PairwiseOptions& options) {
  const SimilarityJoinOptions& join = options.similarity_join;
  PAIRMR_REQUIRE(join.threshold >= 0.0 && join.threshold <= 1.0,
                 "similarity threshold must be within [0, 1]");

  CandidatePhase phase;
  if (join.threshold <= 0.0) {
    // J >= 0 holds for every pair, including fully disjoint sets that no
    // overlap-based filter would surface: pruning is impossible, so the
    // pairwise phase runs the base scheme unfiltered.
    phase.exhaustive = true;
    return phase;
  }

  mr::Engine engine(cluster);
  mr::SimDfs& dfs = cluster.dfs();
  const std::string freq_dir = options.work_dir + "/simjoin-freq";
  const std::string cand_dir = options.work_dir + "/simjoin-cand";
  const std::string pairs_dir = options.work_dir + "/simjoin-pairs";
  dfs.remove_prefix(freq_dir);
  dfs.remove_prefix(cand_dir);
  dfs.remove_prefix(pairs_dir);

  std::string cand_name;
  std::function<std::unique_ptr<mr::Mapper>()> cand_mapper;
  if (join.filter == CandidateFilter::kPrefix) {
    // Phase job 1: global token frequencies for the rare-first order.
    mr::JobSpec freq;
    freq.name = "simjoin-tokenfreq";
    freq.input_paths = input_paths;
    freq.output_dir = freq_dir;
    freq.mapper_factory = [] { return std::make_unique<TokenFreqMapper>(); };
    freq.reducer_factory = [] { return std::make_unique<SumReducer>(); };
    freq.combiner_factory = [] { return std::make_unique<SumReducer>(); };
    freq.num_reduce_tasks = options.num_reduce_tasks;
    freq.max_records_per_split = options.max_records_per_split;
    apply_engine_options(freq, options);
    // The freq job runs in its own pool epoch: the candidate mapper below
    // is built from this job's output, so the cand/dedup specs cannot be
    // in the pool image the freq job forks.
    session.declare(freq);
    phase.jobs.push_back(session.run(engine, freq));

    auto rank = std::make_shared<TokenRank>();
    {
      // Rank tokens rarest-first (frequency, then token id): the
      // candidate mappers order every document's tokens by this table.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> freqs;
      for (const auto& rec : cluster.gather_records(freq_dir)) {
        BufReader r(rec.value);
        freqs.emplace_back(r.get_u64(),
                           static_cast<std::uint32_t>(
                               decode_u64_key(rec.key)));
      }
      std::sort(freqs.begin(), freqs.end());
      rank->reserve(freqs.size());
      for (std::uint32_t i = 0; i < freqs.size(); ++i) {
        rank->emplace(freqs[i].second, i);
      }
    }
    cand_name = "simjoin-candidates[prefix]";
    cand_mapper = [rank, threshold = join.threshold] {
      return std::make_unique<PrefixPostingMapper>(rank, threshold);
    };
  } else {
    cand_name = "simjoin-candidates[lsh]";
    cand_mapper = [join] { return std::make_unique<LshBandMapper>(join); };
  }

  // Phase job 2: postings -> length-filtered pair contributions.
  mr::JobSpec cand;
  cand.name = cand_name;
  cand.input_paths = input_paths;
  cand.output_dir = cand_dir;
  cand.mapper_factory = cand_mapper;
  cand.reducer_factory = [threshold = join.threshold] {
    return std::make_unique<PostingPairReducer>(threshold);
  };
  cand.num_reduce_tasks = options.num_reduce_tasks;
  cand.max_records_per_split = options.max_records_per_split;
  apply_engine_options(cand, options);

  // Phase job 3 spec, built BEFORE the cand job runs so a persistent fork
  // pool's copy-on-write image carries it and the dedup job reuses the
  // warm workers (input_paths is filled in later — workers receive splits
  // by value, never through the spec).
  mr::JobSpec dedup;
  dedup.name = "simjoin-dedup";
  dedup.output_dir = pairs_dir;
  dedup.mapper_factory = [] {
    return std::make_unique<mr::IdentityMapper>();
  };
  dedup.reducer_factory = [] {
    return std::make_unique<DedupPairReducer>();
  };
  dedup.num_reduce_tasks = options.num_reduce_tasks;
  apply_engine_options(dedup, options);

  session.declare(cand);
  session.declare(dedup);
  phase.jobs.push_back(session.run(engine, cand));

  // When the filter killed every pair (disjoint datasets, v = 1) there is
  // nothing to deduplicate and the engine refuses empty-input jobs — the
  // empty CandidateSet stands as-is.
  if (phase.jobs.back().counter(counter::kCandidateContributions) > 0) {
    dedup.input_paths = phase.jobs.back().output_paths;
    phase.jobs.push_back(session.run(engine, dedup));

    std::vector<ElementPair> pairs;
    for (const auto& rec : cluster.gather_records(pairs_dir)) {
      const ElementPair p = decode_pair_key(rec.key);
      PAIRMR_CHECK(p.hi < v, "candidate pair outside the dataset");
      pairs.push_back(p);
    }
    phase.candidates = CandidateSet(std::move(pairs));
  }

  if (options.cleanup_intermediate) {
    dfs.remove_prefix(freq_dir);
    dfs.remove_prefix(cand_dir);
    dfs.remove_prefix(pairs_dir);
  }
  return phase;
}

PairwiseJob similarity_join_job(const SimilarityJoinOptions& options,
                                FinalizeFn finalize) {
  PAIRMR_REQUIRE(options.kernel == SimilarityKernel::kJaccardTokenSet,
                 "similarity_join_job only synthesizes set kernels");
  PairwiseJob job;
  job.compute = [](const Element& a, const Element& b) {
    BufWriter w;
    w.put_f64(jaccard_similarity(decode_token_set(a.payload),
                                 decode_token_set(b.payload)));
    return std::move(w).str();
  };
  job.prepared.prepare = [](const Element& e) -> PreparedKernel::Handle {
    return std::make_shared<const std::vector<std::uint32_t>>(
        decode_token_set(e.payload));
  };
  job.prepared.compare = [](const void* a, const void* b) {
    BufWriter w;
    w.put_f64(jaccard_similarity(
        *static_cast<const std::vector<std::uint32_t>*>(a),
        *static_cast<const std::vector<std::uint32_t>*>(b)));
    return std::move(w).str();
  };
  job.keep = [threshold = options.threshold](const Element&, const Element&,
                                             std::string_view r) {
    BufReader reader(r);
    return reader.get_f64() >= threshold;
  };
  job.finalize = std::move(finalize);
  job.symmetry = Symmetry::kSymmetric;
  return job;
}

}  // namespace pairmr
