#include "design/projective_plane.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "design/gf.hpp"
#include "design/primes.hpp"

namespace pairmr::design {

DesignCollection theorem2_construction(std::uint64_t q) {
  PAIRMR_REQUIRE(is_prime(q), "Theorem 2 construction requires prime q");
  const std::uint64_t v = q_hat(q);
  DesignCollection out;
  out.v = v;
  out.k = q + 1;
  out.q = q;
  out.blocks.reserve(v);

  // The paper states the construction with 1-based element indices
  // s_1..s_v; we emit 0-based indices (subtract 1 on every element).
  auto s = [](std::uint64_t one_based) { return one_based - 1; };

  // Rule 1 (i = 1): D_1 = { s_j | 1 <= j <= q+1 }.
  {
    Block b;
    for (std::uint64_t j = 1; j <= q + 1; ++j) b.push_back(s(j));
    out.blocks.push_back(std::move(b));
  }

  // Rule 2 (1 < i <= q+1): D_i = {s_1} ∪ { s_j | q(i-1)+2 <= j <= qi+1 }.
  for (std::uint64_t i = 2; i <= q + 1; ++i) {
    Block b;
    b.push_back(s(1));
    for (std::uint64_t j = q * (i - 1) + 2; j <= q * i + 1; ++j) {
      b.push_back(s(j));
    }
    out.blocks.push_back(std::move(b));
  }

  // Rule 3 (q+1 < i <= q²+q+1): with h = ⌊(i-2)/q⌋ - 1 and
  // l = (i-2) mod q:
  //   D_i = {s_{h+2}} ∪ { s_{q(m+1) + ((l - h·m) mod q) + 2} | 0<=m<=q-1 }.
  for (std::uint64_t i = q + 2; i <= v; ++i) {
    const std::uint64_t h = (i - 2) / q - 1;
    const std::uint64_t l = (i - 2) % q;
    Block b;
    b.push_back(s(h + 2));
    for (std::uint64_t m = 0; m < q; ++m) {
      // (l - h·m) mod q computed without going negative.
      const std::uint64_t hm = (h % q) * (m % q) % q;
      const std::uint64_t idx = (l + q - hm % q) % q;
      b.push_back(s(q * (m + 1) + idx + 2));
    }
    std::sort(b.begin(), b.end());
    out.blocks.push_back(std::move(b));
  }

  return out;
}

namespace {

// The q²+q+1 normalized homogeneous triples over GF(q), indexed 0-based:
//   [0, q²)      -> (1, a, b) with a = idx / q, b = idx % q
//   [q², q²+q)   -> (0, 1, c) with c = idx - q²
//   q²+q         -> (0, 0, 1)
struct Triple {
  std::uint64_t x, y, z;
};

Triple triple_of(std::uint64_t idx, std::uint64_t q) {
  if (idx < q * q) return {1, idx / q, idx % q};
  if (idx < q * q + q) return {0, 1, idx - q * q};
  return {0, 0, 1};
}

}  // namespace

DesignCollection pg2_construction(std::uint64_t q) {
  const GaloisField gf(q);
  const std::uint64_t v = q_hat(q);
  DesignCollection out;
  out.v = v;
  out.k = q + 1;
  out.q = q;
  out.blocks.reserve(v);

  // Lines and points share the triple enumeration; point P lies on line
  // L = (A,B,C) iff A·Px + B·Py + C·Pz = 0 in GF(q). Rather than testing
  // all q̂ points per line (O(q⁴) total), solve the incidence equation
  // directly per point family — O(q) per line.
  for (std::uint64_t line = 0; line < v; ++line) {
    const Triple l = triple_of(line, q);
    const std::uint64_t A = l.x, B = l.y, C = l.z;
    Block b;
    b.reserve(q + 1);

    // Family (1, y, z), index y·q + z: A + B·y + C·z = 0.
    if (C != 0) {
      const std::uint64_t c_inv = gf.inv(C);
      for (std::uint64_t y = 0; y < q; ++y) {
        const std::uint64_t z =
            gf.mul(c_inv, gf.neg(gf.add(A, gf.mul(B, y))));
        b.push_back(y * q + z);
      }
    } else if (B != 0) {
      const std::uint64_t y = gf.mul(gf.inv(B), gf.neg(A));
      for (std::uint64_t z = 0; z < q; ++z) b.push_back(y * q + z);
    }
    // (else A == 1 by normalization: no affine points on this line.)

    // Family (0, 1, c), index q² + c: B + C·c = 0.
    if (C != 0) {
      b.push_back(q * q + gf.mul(gf.inv(C), gf.neg(B)));
    } else if (B == 0) {
      for (std::uint64_t c = 0; c < q; ++c) b.push_back(q * q + c);
    }

    // Point (0, 0, 1), index q² + q: on the line iff C = 0.
    if (C == 0) b.push_back(q * q + q);

    PAIRMR_CHECK(b.size() == q + 1, "PG(2,q) line has wrong point count");
    std::sort(b.begin(), b.end());
    out.blocks.push_back(std::move(b));
  }
  return out;
}

DesignCollection truncate(DesignCollection design, std::uint64_t v) {
  PAIRMR_REQUIRE(v >= 2, "need at least two elements");
  PAIRMR_REQUIRE(v <= design.v, "cannot truncate upward");
  if (v == design.v) return design;
  std::vector<Block> kept;
  kept.reserve(design.blocks.size());
  for (auto& block : design.blocks) {
    block.erase(std::remove_if(block.begin(), block.end(),
                               [v](std::uint64_t e) { return e >= v; }),
                block.end());
    // Blocks with < 2 elements contribute no pairs (paper drops them).
    if (block.size() >= 2) kept.push_back(std::move(block));
  }
  design.blocks = std::move(kept);
  design.v = v;
  return design;
}

}  // namespace pairmr::design
