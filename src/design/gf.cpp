#include "design/gf.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "design/primes.hpp"

namespace pairmr::design {

namespace {

// Digits of `code` base p, low digit first, padded to `len`.
std::vector<std::uint64_t> to_digits(std::uint64_t code, std::uint64_t p,
                                     std::uint32_t len) {
  std::vector<std::uint64_t> d(len, 0);
  for (std::uint32_t i = 0; i < len && code != 0; ++i) {
    d[i] = code % p;
    code /= p;
  }
  return d;
}

std::uint64_t from_digits(const std::vector<std::uint64_t>& d,
                          std::uint64_t p) {
  std::uint64_t code = 0;
  for (std::size_t i = d.size(); i-- > 0;) code = code * p + d[i];
  return code;
}

// In-place remainder of `poly` modulo monic `divisor` over Z_p.
// Both are coefficient vectors, low degree first; divisor's leading
// coefficient must be 1.
void mod_monic(std::vector<std::uint64_t>& poly,
               const std::vector<std::uint64_t>& divisor, std::uint64_t p) {
  const std::size_t dd = divisor.size() - 1;  // divisor degree
  while (poly.size() > dd) {
    const std::uint64_t lead = poly.back();
    if (lead != 0) {
      const std::size_t shift = poly.size() - 1 - dd;
      for (std::size_t i = 0; i < dd; ++i) {
        // poly[shift+i] -= lead * divisor[i]  (mod p)
        const std::uint64_t sub = (lead * divisor[i]) % p;
        poly[shift + i] = (poly[shift + i] + p - sub) % p;
      }
    }
    poly.pop_back();
  }
  while (!poly.empty() && poly.back() == 0) poly.pop_back();
}

}  // namespace

GaloisField::GaloisField(std::uint64_t q) : q_(q) {
  const auto pp = as_prime_power(q);
  PAIRMR_REQUIRE(pp.has_value(),
                 "GF order must be a prime power, got " + std::to_string(q));
  p_ = pp->p;
  k_ = pp->k;
  if (k_ > 1) {
    // Exhaustive search for a monic irreducible x^k + tail. Guaranteed to
    // exist for every prime power; the search space is p^k = q codes.
    for (std::uint64_t code = 1; code < q_; ++code) {
      auto tail = to_digits(code, p_, k_);
      if (tail[0] == 0) continue;  // divisible by x
      if (is_irreducible(tail)) {
        irred_tail_ = std::move(tail);
        break;
      }
    }
    PAIRMR_CHECK(!irred_tail_.empty(),
                 "no irreducible polynomial found (impossible)");
  }
  if (q_ <= (1u << 16)) build_log_tables();
}

void GaloisField::build_log_tables() {
  if (q_ == 2) {
    // Trivial multiplicative group {1}: 1 generates it.
    generator_ = 1;
    log_ = {0, 0};
    exp_ = {1, 1};
    return;
  }
  // Find a primitive element by direct orbit construction: g is a
  // generator iff its powers enumerate all q-1 nonzero elements.
  std::vector<std::uint32_t> log_table(q_, 0);
  std::vector<std::uint32_t> exp_table;
  for (std::uint64_t g = 2; g < q_; ++g) {
    exp_table.assign(2 * (q_ - 1), 0);
    std::vector<bool> seen(q_, false);
    std::uint64_t x = 1;
    std::uint64_t steps = 0;
    bool is_generator = true;
    for (; steps < q_ - 1; ++steps) {
      if (seen[x]) {
        is_generator = false;  // orbit closed early: not primitive
        break;
      }
      seen[x] = true;
      exp_table[steps] = static_cast<std::uint32_t>(x);
      log_table[x] = static_cast<std::uint32_t>(steps);
      x = mul_direct(x, g);
    }
    if (is_generator && x == 1) {
      generator_ = g;
      // Double-length exp table: exp_[i+j] needs no modular reduction.
      for (std::uint64_t i = 0; i < q_ - 1; ++i) {
        exp_table[q_ - 1 + i] = exp_table[i];
      }
      log_ = std::move(log_table);
      exp_ = std::move(exp_table);
      return;
    }
  }
  PAIRMR_CHECK(false, "no primitive element found (impossible for a field)");
}

bool GaloisField::is_irreducible(
    const std::vector<std::uint64_t>& tail) const {
  // f = x^k + tail. f is reducible iff some monic polynomial of degree in
  // [1, k/2] divides it. Degrees are tiny (k <= ~6 for realistic plane
  // orders), so exhaustive trial division is cheap.
  std::vector<std::uint64_t> f(tail);
  f.push_back(1);  // monic leading coefficient

  for (std::uint32_t deg = 1; deg <= k_ / 2; ++deg) {
    std::uint64_t count = 1;
    for (std::uint32_t i = 0; i < deg; ++i) count *= p_;
    for (std::uint64_t code = 0; code < count; ++code) {
      std::vector<std::uint64_t> divisor = to_digits(code, p_, deg);
      divisor.push_back(1);  // monic
      std::vector<std::uint64_t> rem = f;
      mod_monic(rem, divisor, p_);
      if (rem.empty()) return false;
    }
  }
  return true;
}

std::uint64_t GaloisField::add(std::uint64_t a, std::uint64_t b) const {
  PAIRMR_DCHECK(a < q_ && b < q_, "GF operand out of range");
  if (k_ == 1) return (a + b) % p_;
  std::uint64_t out = 0;
  std::uint64_t place = 1;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t da = a % p_;
    const std::uint64_t db = b % p_;
    out += ((da + db) % p_) * place;
    a /= p_;
    b /= p_;
    place *= p_;
  }
  return out;
}

std::uint64_t GaloisField::sub(std::uint64_t a, std::uint64_t b) const {
  PAIRMR_DCHECK(a < q_ && b < q_, "GF operand out of range");
  if (k_ == 1) return (a + p_ - b) % p_;
  std::uint64_t out = 0;
  std::uint64_t place = 1;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t da = a % p_;
    const std::uint64_t db = b % p_;
    out += ((da + p_ - db) % p_) * place;
    a /= p_;
    b /= p_;
    place *= p_;
  }
  return out;
}

std::uint64_t GaloisField::mul_poly(std::uint64_t a, std::uint64_t b) const {
  const auto da = to_digits(a, p_, k_);
  const auto db = to_digits(b, p_, k_);
  std::vector<std::uint64_t> prod(2 * k_ - 1, 0);
  for (std::uint32_t i = 0; i < k_; ++i) {
    if (da[i] == 0) continue;
    for (std::uint32_t j = 0; j < k_; ++j) {
      prod[i + j] = (prod[i + j] + da[i] * db[j]) % p_;
    }
  }
  std::vector<std::uint64_t> f(irred_tail_);
  f.push_back(1);
  mod_monic(prod, f, p_);
  prod.resize(k_, 0);
  return from_digits(prod, p_);
}

std::uint64_t GaloisField::mul_direct(std::uint64_t a, std::uint64_t b) const {
  if (k_ == 1) return (a * b) % p_;
  return mul_poly(a, b);
}

std::uint64_t GaloisField::mul(std::uint64_t a, std::uint64_t b) const {
  PAIRMR_DCHECK(a < q_ && b < q_, "GF operand out of range");
  if (!log_.empty()) {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::size_t>(log_[a]) + log_[b]];
  }
  return mul_direct(a, b);
}

std::uint64_t GaloisField::pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t result = 1;
  std::uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t GaloisField::inv(std::uint64_t a) const {
  PAIRMR_REQUIRE(a != 0 && a < q_, "inverse of zero / out-of-range element");
  if (!log_.empty()) {
    // g^(q-1) = 1, so a^{-1} = g^{(q-1) - log a}.
    return exp_[(q_ - 1 - log_[a]) % (q_ - 1)];
  }
  // a^(q-2) == a^{-1} in GF(q) by Lagrange.
  return pow(a, q_ - 2);
}

}  // namespace pairmr::design
