// Validators for (v,k,1)-designs and pair coverage.
//
// Used by tests and by DesignScheme's (optional) self-check: the central
// correctness property of every distribution scheme is that each unordered
// pair of elements is covered exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "design/projective_plane.hpp"

namespace pairmr::design {

struct CheckResult {
  bool ok = true;
  std::string error;  // first violation, empty when ok

  explicit operator bool() const { return ok; }
};

// Full (v,k,1)-design check per Definition 1: every block has exactly k
// elements and every 2-subset of [0, v) appears in exactly one block.
CheckResult check_design(const DesignCollection& design);

// Weaker check for truncated collections: every 2-subset of [0, v) appears
// in exactly one block (block sizes may vary).
CheckResult check_pair_coverage(std::uint64_t v,
                                const std::vector<Block>& blocks);

}  // namespace pairmr::design
