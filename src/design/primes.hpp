// Primality and prime-power utilities for projective-plane orders.
//
// Theorem 1 of the paper guarantees a projective plane of order q for any
// prime power q. The design scheme needs the smallest admissible q with
// q^2 + q + 1 >= v, so these helpers search primes and prime powers.
#pragma once

#include <cstdint>
#include <optional>

namespace pairmr::design {

bool is_prime(std::uint64_t n);

// q = p^k with p prime, k >= 1.
struct PrimePower {
  std::uint64_t p = 0;  // prime base
  std::uint32_t k = 0;  // exponent
};

// Decompose q into p^k; nullopt if q is not a prime power (or q < 2).
std::optional<PrimePower> as_prime_power(std::uint64_t q);

// q^2 + q + 1 — the number of points (and lines) of a projective plane of
// order q; the paper calls this q̂.
std::uint64_t q_hat(std::uint64_t q);

// Smallest prime q with q_hat(q) >= v (the paper's §5.3 choice).
std::uint64_t smallest_prime_order(std::uint64_t v);

// Smallest prime *power* q with q_hat(q) >= v (our extension; never larger
// than smallest_prime_order, hence never worse).
std::uint64_t smallest_prime_power_order(std::uint64_t v);

}  // namespace pairmr::design
