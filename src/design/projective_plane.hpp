// Projective-plane / (v,k,1)-design construction.
//
// Two constructions of a (q²+q+1, q+1, 1)-design:
//   * `theorem2_construction(q)` — the paper's Theorem 2 direct formula
//     (after Lee/Kang/Choi), valid for *prime* q;
//   * `pg2_construction(q)` — classical PG(2,q) incidence over GF(q),
//     valid for any *prime power* q (this realizes the paper's Theorem 1
//     beyond primes).
//
// Blocks contain 0-based element indices, sorted ascending.
#pragma once

#include <cstdint>
#include <vector>

namespace pairmr::design {

using Block = std::vector<std::uint64_t>;

struct DesignCollection {
  std::uint64_t v = 0;  // number of elements the blocks draw from
  std::uint64_t k = 0;  // nominal block size (q + 1)
  std::uint64_t q = 0;  // plane order
  std::vector<Block> blocks;
};

// Paper Theorem 2: direct (q²+q+1, q+1, 1)-design for prime q.
DesignCollection theorem2_construction(std::uint64_t q);

// PG(2,q): points = 1-dim subspaces of GF(q)³, lines = 2-dim subspaces.
// Valid for any prime power q.
DesignCollection pg2_construction(std::uint64_t q);

// Truncate a design over q̂ = q²+q+1 points to the first v elements
// (paper §5.3: elements s_{v+1}..s_{q̂} "do not exist"): each block keeps
// only indices < v, and blocks left with fewer than 2 elements are dropped
// (they contribute no pairs).
DesignCollection truncate(DesignCollection design, std::uint64_t v);

}  // namespace pairmr::design
