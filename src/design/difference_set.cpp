#include "design/difference_set.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/intmath.hpp"
#include "design/gf.hpp"
#include "design/primes.hpp"

namespace pairmr::design {

std::vector<std::uint64_t> singer_difference_set(std::uint64_t q) {
  PAIRMR_REQUIRE(as_prime_power(q).has_value(),
                 "plane order must be a prime power");
  const std::uint64_t cube = q * q * q;
  PAIRMR_REQUIRE(cube <= (1u << 16),
                 "Singer construction limited to q^3 <= 65536 (q <= 40)");
  const std::uint64_t v = q_hat(q);

  const GaloisField field(cube);
  PAIRMR_CHECK(field.has_log_tables(), "GF(q^3) must have log tables here");
  const std::uint64_t g = field.generator();

  // The subfield GF(q) inside GF(q³): exactly the fixed points of the
  // Frobenius power x ↦ x^q.
  std::vector<std::uint64_t> subfield;
  subfield.reserve(q);
  for (std::uint64_t x = 0; x < cube; ++x) {
    if (field.pow(x, q) == x) subfield.push_back(x);
  }
  PAIRMR_CHECK(subfield.size() == q, "subfield extraction found wrong size");

  // A 2-dim GF(q)-subspace H = span{1, w} with w outside the subfield.
  std::uint64_t w = 0;
  for (std::uint64_t x = 2; x < cube; ++x) {
    if (field.pow(x, q) != x) {
      w = x;
      break;
    }
  }
  PAIRMR_CHECK(w != 0, "no element outside the subfield (impossible)");

  std::unordered_set<std::uint64_t> h_members;
  h_members.reserve(q * q);
  for (const std::uint64_t a : subfield) {
    for (const std::uint64_t b : subfield) {
      h_members.insert(field.add(a, field.mul(b, w)));
    }
  }
  PAIRMR_CHECK(h_members.size() == q * q, "H is not a 2-dim subspace");

  // D = { i in [0, v) : g^i ∈ H }. Walk powers of g once.
  std::vector<std::uint64_t> d;
  d.reserve(q + 1);
  std::uint64_t x = 1;  // g^0
  for (std::uint64_t i = 0; i < v; ++i) {
    if (h_members.contains(x)) d.push_back(i);
    x = field.mul(x, g);
  }
  PAIRMR_CHECK(d.size() == q + 1,
               "Singer set has wrong size — subspace choice failed");
  return d;
}

bool is_planar_difference_set(const std::vector<std::uint64_t>& set,
                              std::uint64_t modulus) {
  PAIRMR_REQUIRE(modulus >= 3, "modulus too small");
  for (const std::uint64_t e : set) {
    PAIRMR_REQUIRE(e < modulus, "difference-set element out of range");
  }
  std::vector<std::uint8_t> seen(modulus, 0);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      const std::uint64_t diff = (set[i] + modulus - set[j]) % modulus;
      if (diff == 0 || seen[diff]) return false;
      seen[diff] = 1;
    }
  }
  // Exactly-once: k(k-1) ordered differences must tile the k(k-1) nonzero
  // residues (which forces modulus == k² - k + 1).
  for (std::uint64_t r = 1; r < modulus; ++r) {
    if (!seen[r]) return false;
  }
  return true;
}

bool is_difference_cover(const std::vector<std::uint64_t>& set,
                         std::uint64_t modulus) {
  PAIRMR_REQUIRE(modulus >= 1, "modulus must be positive");
  for (const std::uint64_t e : set) {
    PAIRMR_REQUIRE(e < modulus, "difference-cover element out of range");
  }
  if (set.empty()) return false;
  std::vector<std::uint8_t> seen(modulus, 0);
  std::uint64_t remaining = modulus;
  for (const std::uint64_t a : set) {
    for (const std::uint64_t b : set) {
      const std::uint64_t diff = (a + modulus - b) % modulus;
      if (!seen[diff]) {
        seen[diff] = 1;
        if (--remaining == 0) return true;
      }
    }
  }
  return remaining == 0;
}

std::vector<std::uint64_t> difference_cover(std::uint64_t v) {
  PAIRMR_REQUIRE(v >= 1, "difference cover needs a positive modulus");
  if (v <= 3) {
    std::vector<std::uint64_t> tiny;
    for (std::uint64_t e = 0; e < std::min<std::uint64_t>(v, 2); ++e) {
      tiny.push_back(e);
    }
    return tiny;  // {0} or {0,1}: covers Z_1, Z_2, Z_3
  }

  // Perfect cover when v is an exact Singer plane order: √v-sized, the
  // same residues the cyclic design scheme uses.
  for (std::uint64_t q = 2; q * q * q <= (1u << 16); ++q) {
    if (q_hat(q) == v && as_prime_power(q).has_value()) {
      return singer_difference_set(q);
    }
  }

  // Two-scale base cover: units {0..r-1} plus multiples of r. Any
  // d = a·r + b (0 <= b < r) is (a+1)·r − (r−b), both sides in the cover
  // mod v.
  const std::uint64_t r = isqrt(v - 1) + 1;  // ⌈√v⌉
  std::vector<std::uint64_t> cover;
  for (std::uint64_t e = 0; e < r; ++e) cover.push_back(e);
  for (std::uint64_t i = 1; i <= ceil_div(v, r); ++i) {
    cover.push_back((i * r) % v);
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  PAIRMR_CHECK(is_difference_cover(cover, v),
               "two-scale base construction failed to cover");

  // Greedy prune, largest first: drop any element whose removal keeps the
  // cover property. Deterministic, O(|D|³) with |D| = O(√v).
  for (std::size_t i = cover.size(); i-- > 0;) {
    std::vector<std::uint64_t> candidate;
    candidate.reserve(cover.size() - 1);
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (j != i) candidate.push_back(cover[j]);
    }
    if (!candidate.empty() && is_difference_cover(candidate, v)) {
      cover = std::move(candidate);
    }
  }
  return cover;
}

DesignCollection cyclic_construction(std::uint64_t q) {
  const std::vector<std::uint64_t> d = singer_difference_set(q);
  const std::uint64_t v = q_hat(q);
  DesignCollection out;
  out.v = v;
  out.k = q + 1;
  out.q = q;
  out.blocks.reserve(v);
  for (std::uint64_t t = 0; t < v; ++t) {
    Block block;
    block.reserve(d.size());
    for (const std::uint64_t e : d) block.push_back((e + t) % v);
    std::sort(block.begin(), block.end());
    out.blocks.push_back(std::move(block));
  }
  return out;
}

}  // namespace pairmr::design
