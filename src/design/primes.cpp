#include "design/primes.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr::design {

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0) return false;
  // Trial division is fine: plane orders stay far below 2^32 in practice
  // (q ~ sqrt(v)), so the loop runs at most ~2^16 iterations.
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

std::optional<PrimePower> as_prime_power(std::uint64_t q) {
  if (q < 2) return std::nullopt;
  // Find the smallest prime factor; q must then be a pure power of it.
  std::uint64_t p = 0;
  if (q % 2 == 0) {
    p = 2;
  } else {
    for (std::uint64_t d = 3; d * d <= q; d += 2) {
      if (q % d == 0) {
        p = d;
        break;
      }
    }
    if (p == 0) p = q;  // q itself is prime
  }
  std::uint32_t k = 0;
  std::uint64_t rest = q;
  while (rest % p == 0) {
    rest /= p;
    ++k;
  }
  if (rest != 1) return std::nullopt;
  return PrimePower{p, k};
}

std::uint64_t q_hat(std::uint64_t q) {
  return pairmr::checked_add(pairmr::checked_mul(q, q), q + 1);
}

namespace {

template <typename Pred>
std::uint64_t smallest_order_where(std::uint64_t v, Pred admissible) {
  PAIRMR_REQUIRE(v >= 2, "need at least two elements for a design");
  // q_hat(q) >= v  <=>  q >= (sqrt(4v-3)-1)/2; start just below and scan.
  std::uint64_t q = (pairmr::isqrt(4 * v) + 1) / 2;
  while (q > 2 && q_hat(q - 1) >= v) --q;
  while (q_hat(q) < v || !admissible(q)) ++q;
  return q;
}

}  // namespace

std::uint64_t smallest_prime_order(std::uint64_t v) {
  return smallest_order_where(v, [](std::uint64_t q) { return is_prime(q); });
}

std::uint64_t smallest_prime_power_order(std::uint64_t v) {
  return smallest_order_where(
      v, [](std::uint64_t q) { return as_prime_power(q).has_value(); });
}

}  // namespace pairmr::design
