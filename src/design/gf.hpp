// Finite field GF(p^k) arithmetic.
//
// Field elements are encoded as integers in [0, q): the base-p digits of
// the code are the coefficients of a polynomial over Z_p, reduced modulo a
// monic irreducible polynomial of degree k (found by exhaustive search at
// construction — k is tiny for plane orders, so the search is instant).
// For prime q (k == 1) all operations collapse to modular arithmetic.
//
// For q <= 2^16 the constructor additionally builds discrete log/antilog
// tables over a primitive element, making mul/inv/pow O(1) table lookups
// — this is what keeps PG(2,q) construction fast at realistic plane
// orders (q ≈ √v).
//
// This powers the PG(2,q) projective-plane construction for prime-power
// orders, extending the paper's prime-only Theorem 2 construction.
#pragma once

#include <cstdint>
#include <vector>

namespace pairmr::design {

class GaloisField {
 public:
  // q must be a prime power; throws PreconditionError otherwise.
  explicit GaloisField(std::uint64_t q);

  std::uint64_t order() const { return q_; }
  std::uint64_t characteristic() const { return p_; }
  std::uint32_t degree() const { return k_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;

  // Multiplicative inverse; a must be nonzero.
  std::uint64_t inv(std::uint64_t a) const;

  std::uint64_t neg(std::uint64_t a) const { return sub(0, a); }

  // a^e by square-and-multiply (e >= 0; 0^0 == 1).
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  // Coefficients (low degree first, length k) of the reduction polynomial,
  // exposed for tests: x^k + irreducible_tail()·[1, x, ..., x^{k-1}].
  const std::vector<std::uint64_t>& irreducible_tail() const {
    return irred_tail_;
  }

  // A primitive element (generator of the multiplicative group), when
  // log tables were built; 0 otherwise.
  std::uint64_t generator() const { return generator_; }
  bool has_log_tables() const { return !log_.empty(); }

 private:
  bool is_irreducible(const std::vector<std::uint64_t>& tail) const;
  std::uint64_t mul_poly(std::uint64_t a, std::uint64_t b) const;
  // Slow-path multiply used during table construction.
  std::uint64_t mul_direct(std::uint64_t a, std::uint64_t b) const;
  void build_log_tables();

  std::uint64_t q_ = 0;
  std::uint64_t p_ = 0;
  std::uint32_t k_ = 0;
  // Tail coefficients c_0..c_{k-1} of the monic irreducible
  // x^k + c_{k-1} x^{k-1} + ... + c_0 (empty when k == 1).
  std::vector<std::uint64_t> irred_tail_;

  // Discrete log tables (q <= 2^16): exp_[i] = g^i for i in [0, 2(q-1)),
  // log_[a] = discrete log of a (a != 0).
  std::uint64_t generator_ = 0;
  std::vector<std::uint32_t> log_;
  std::vector<std::uint32_t> exp_;
};

}  // namespace pairmr::design
