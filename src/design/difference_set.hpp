// Planar (perfect) difference sets and the Singer construction.
//
// A (q̂, q+1, 1) planar difference set D ⊂ Z_q̂ (q̂ = q²+q+1) has the
// property that every nonzero residue mod q̂ arises exactly once as a
// difference d_i − d_j. Its translates B_t = { (d + t) mod q̂ : d ∈ D }
// form a cyclic projective plane of order q — a (q̂, q+1, 1)-design whose
// block membership is pure modular arithmetic:
//   element e lies in block t  ⇔  (e − t) mod q̂ ∈ D,
// i.e. exactly the q+1 blocks t = (e − d) mod q̂. This gives the design
// distribution scheme O(q) membership queries with O(q) memory — no
// inverted index over all v elements.
//
// Construction (Singer, 1938): take F = GF(q³) with primitive element g.
// The subgroup GF(q)* = <g^q̂> fixes every projective point, so the map
// x ↦ g·x induces a q̂-cycle on the points of PG(2,q). For any 2-dim
// GF(q)-subspace H ⊂ F (a line), D = { i ∈ [0, q̂) : g^i ∈ H } is a
// planar difference set.
#pragma once

#include <cstdint>
#include <vector>

#include "design/projective_plane.hpp"

namespace pairmr::design {

// Singer difference set for plane order q (prime power). Sorted
// ascending, size q+1, first element may be any residue.
// Requires q³ ≤ 2^16 (the GF log-table range), i.e. q ≤ 40 — enough for
// datasets up to v ≈ 1680; larger orders use the PG(2,q) incidence
// construction instead.
std::vector<std::uint64_t> singer_difference_set(std::uint64_t q);

// Check the defining property: each nonzero residue mod `modulus` occurs
// exactly once among pairwise differences.
bool is_planar_difference_set(const std::vector<std::uint64_t>& set,
                              std::uint64_t modulus);

// Expand a difference set into the full cyclic design (all q̂ translates).
DesignCollection cyclic_construction(std::uint64_t q);

// --- Difference covers (relaxed difference sets) -------------------------
//
// A difference cover D ⊆ Z_v demands only that every residue appears at
// least once as a difference d_i − d_j — dropping the planar "exactly
// once" constraint frees v from the q²+q+1 prime-power lattice: covers of
// size O(√v) exist for every v (Kleinheksel & Somani use them to build
// cyclic all-pairs quorums for arbitrary numbers of nodes). Translates
// D + t still guarantee every unordered pair a common set, which is all
// the quorum distribution scheme needs.

// Check the covering property: every residue mod `modulus` (including 0)
// occurs among pairwise differences d_i − d_j of `set`.
bool is_difference_cover(const std::vector<std::uint64_t>& set,
                         std::uint64_t modulus);

// Deterministic difference cover of Z_v for any v >= 1, sorted ascending.
//   * exact plane orders (v = q²+q+1, q a prime power with q³ ≤ 2^16):
//     the Singer difference set — perfect, size q+1 ≈ √v;
//   * everything else: the classic two-scale cover
//     {0..r−1} ∪ {i·r mod v} with r = ⌈√v⌉ (≤ 2√v + 2 elements, covering
//     because d = (a+1)·r − (r−b) for d = a·r + b), greedily pruned of
//     redundant elements largest-first.
std::vector<std::uint64_t> difference_cover(std::uint64_t v);

}  // namespace pairmr::design
