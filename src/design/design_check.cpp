#include "design/design_check.hpp"

#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/intmath.hpp"

namespace pairmr::design {

namespace {

// Label of unordered pair {a, b}, a != b, in [0, C(v,2)).
std::uint64_t pair_label(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  // Pairs with larger index b occupy labels [T(b-1), T(b)): a bijection
  // from unordered pairs onto [0, C(v,2)).
  return (b * (b - 1)) / 2 + a;
}

}  // namespace

CheckResult check_pair_coverage(std::uint64_t v,
                                const std::vector<Block>& blocks) {
  PAIRMR_REQUIRE(v >= 2, "need at least two elements");
  const std::uint64_t total = pairmr::pair_count(v);
  std::vector<std::uint8_t> seen(total, 0);

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Block& block = blocks[bi];
    // Validate every element before the pair pass — a bad id in position
    // j would otherwise be paired (and index out of bounds) before the
    // outer loop reaches it.
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (block[i] >= v) {
        std::ostringstream os;
        os << "block " << bi << " references element " << block[i]
           << " >= v=" << v;
        return CheckResult{false, os.str()};
      }
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      for (std::size_t j = i + 1; j < block.size(); ++j) {
        if (block[i] == block[j]) {
          std::ostringstream os;
          os << "block " << bi << " contains duplicate element " << block[i];
          return CheckResult{false, os.str()};
        }
        const std::uint64_t label = pair_label(block[i], block[j]);
        if (seen[label]) {
          std::ostringstream os;
          os << "pair {" << block[i] << "," << block[j]
             << "} covered more than once (second time in block " << bi
             << ")";
          return CheckResult{false, os.str()};
        }
        seen[label] = 1;
      }
    }
  }

  for (std::uint64_t label = 0; label < total; ++label) {
    if (!seen[label]) {
      // Invert the label back to the pair for the message.
      const std::uint64_t b = pairmr::inv_triangular(label) + 1;
      const std::uint64_t a = label - (b * (b - 1)) / 2;
      std::ostringstream os;
      os << "pair {" << a << "," << b << "} never covered";
      return CheckResult{false, os.str()};
    }
  }
  return CheckResult{};
}

CheckResult check_design(const DesignCollection& design) {
  for (std::size_t bi = 0; bi < design.blocks.size(); ++bi) {
    if (design.blocks[bi].size() != design.k) {
      std::ostringstream os;
      os << "block " << bi << " has " << design.blocks[bi].size()
         << " elements, expected k=" << design.k;
      return CheckResult{false, os.str()};
    }
  }
  return check_pair_coverage(design.v, design.blocks);
}

}  // namespace pairmr::design
